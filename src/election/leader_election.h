#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/ids.h"

namespace bamboo::election {

/// Maps a view to its designated leader *set*. Implementations must be
/// pure functions of the view so that all replicas agree without
/// communication. Single-leader elections (the default overrides) expose
/// a width-1 set whose slot 0 is leader(view); multi-leader elections
/// (FnF-BFT) return an ordered set of `width()` leaders, one per proposal
/// slot within the view.
class LeaderElection {
 public:
  virtual ~LeaderElection() = default;
  [[nodiscard]] virtual types::NodeId leader(types::View view) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of proposal slots (= parallel leaders) per view.
  [[nodiscard]] virtual types::Slot width() const { return 1; }

  /// Leader of one slot within the view. Must satisfy
  /// slot_leader(view, 0) == leader(view) so single-leader code paths see
  /// no behavior change.
  [[nodiscard]] virtual types::NodeId slot_leader(types::View view,
                                                  types::Slot) const {
    return leader(view);
  }

  /// The view's ordered leader set, slot by slot.
  [[nodiscard]] virtual std::vector<types::NodeId> leader_set(
      types::View view) const {
    std::vector<types::NodeId> set;
    set.reserve(width());
    for (types::Slot s = 0; s < width(); ++s) {
      set.push_back(slot_leader(view, s));
    }
    return set;
  }
};

/// Rotate through replicas in id order (Table I: master = 0 means rotating).
class RoundRobinElection final : public LeaderElection {
 public:
  explicit RoundRobinElection(std::uint32_t num_replicas)
      : n_(num_replicas) {}
  [[nodiscard]] types::NodeId leader(types::View view) const override {
    return static_cast<types::NodeId>(view % n_);
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::uint32_t n_;
};

/// A fixed leader for every view (PBFT-style stable leader).
class StaticElection final : public LeaderElection {
 public:
  explicit StaticElection(types::NodeId leader) : leader_(leader) {}
  [[nodiscard]] types::NodeId leader(types::View) const override {
    return leader_;
  }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  types::NodeId leader_;
};

/// Pseudo-random rotation via a hash of the view (the paper §V-E mentions
/// hash-based election as a design choice the model generalizes to).
class HashElection final : public LeaderElection {
 public:
  HashElection(std::uint64_t seed, std::uint32_t num_replicas)
      : seed_(seed), n_(num_replicas) {}
  [[nodiscard]] types::NodeId leader(types::View view) const override;
  [[nodiscard]] std::string name() const override { return "hash"; }

 private:
  std::uint64_t seed_;
  std::uint32_t n_;
};

/// FnF-BFT-style multi-leader election: each view has `width` parallel
/// slot leaders spread evenly around the replica ring (stride n/width),
/// and the set is fixed for an *epoch* of `epoch_len` consecutive views,
/// rotating by one id at every epoch boundary. The spread keeps any
/// contiguous Byzantine block (the top byz_no ids) to at most its
/// proportional share of every leader set — a clustered rotation would
/// periodically hand ALL slots of an epoch to the adversary, stalling
/// epoch_len consecutive views.
/// Accumulated timeouts advance views through TCs, so a stalled or
/// degraded leader set burns through its epoch at timeout speed and is
/// rotated out within `epoch_len` views — the FnF-BFT recovery argument,
/// expressed as a pure function of the view.
class MultiLeaderElection final : public LeaderElection {
 public:
  MultiLeaderElection(std::uint32_t num_replicas, types::Slot width,
                      types::View epoch_len)
      : n_(num_replicas), width_(width), epoch_len_(epoch_len) {}

  [[nodiscard]] types::NodeId leader(types::View view) const override {
    return slot_leader(view, 0);
  }
  [[nodiscard]] types::Slot width() const override { return width_; }
  [[nodiscard]] types::NodeId slot_leader(types::View view,
                                          types::Slot slot) const override {
    // Views start at 1; genesis (view 0) maps into epoch 0. Slots are
    // strided n/width apart (distinct: stride * slot < n for every
    // slot < width), so each epoch's set samples the whole ring. Within
    // the epoch the set's slot ORDER rotates every view: the final slot
    // closes the view (its QC advances everyone), so pinning one member
    // there for a whole epoch would let a single Byzantine set member
    // time out epoch_len consecutive views. Rotation caps its tenure of
    // the closing slot at 1/width of the views.
    const types::View epoch = view == 0 ? 0 : (view - 1) / epoch_len_;
    const auto stride = static_cast<types::View>(n_ / width_);
    const auto position = static_cast<types::View>(
        (static_cast<types::View>(slot) + view) % width_);
    return static_cast<types::NodeId>((epoch + stride * position) % n_);
  }
  [[nodiscard]] types::View epoch_of(types::View view) const {
    return view == 0 ? 0 : (view - 1) / epoch_len_;
  }
  [[nodiscard]] types::View epoch_len() const { return epoch_len_; }
  [[nodiscard]] std::string name() const override { return "multi-leader"; }

 private:
  std::uint32_t n_;
  types::Slot width_;
  types::View epoch_len_;
};

/// Factory: "roundrobin" | "static:<id>" | "hash" |
/// "multi:<width>[:<epoch_len>]" (epoch_len defaults to 16 views).
std::unique_ptr<LeaderElection> make_election(const std::string& spec,
                                              std::uint32_t num_replicas,
                                              std::uint64_t seed);

}  // namespace bamboo::election
