#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "types/ids.h"

namespace bamboo::election {

/// Maps a view to its designated leader. Implementations must be pure
/// functions of the view so that all replicas agree without communication.
class LeaderElection {
 public:
  virtual ~LeaderElection() = default;
  [[nodiscard]] virtual types::NodeId leader(types::View view) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Rotate through replicas in id order (Table I: master = 0 means rotating).
class RoundRobinElection final : public LeaderElection {
 public:
  explicit RoundRobinElection(std::uint32_t num_replicas)
      : n_(num_replicas) {}
  [[nodiscard]] types::NodeId leader(types::View view) const override {
    return static_cast<types::NodeId>(view % n_);
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::uint32_t n_;
};

/// A fixed leader for every view (PBFT-style stable leader).
class StaticElection final : public LeaderElection {
 public:
  explicit StaticElection(types::NodeId leader) : leader_(leader) {}
  [[nodiscard]] types::NodeId leader(types::View) const override {
    return leader_;
  }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  types::NodeId leader_;
};

/// Pseudo-random rotation via a hash of the view (the paper §V-E mentions
/// hash-based election as a design choice the model generalizes to).
class HashElection final : public LeaderElection {
 public:
  HashElection(std::uint64_t seed, std::uint32_t num_replicas)
      : seed_(seed), n_(num_replicas) {}
  [[nodiscard]] types::NodeId leader(types::View view) const override;
  [[nodiscard]] std::string name() const override { return "hash"; }

 private:
  std::uint64_t seed_;
  std::uint32_t n_;
};

/// Factory: "roundrobin" | "static:<id>" | "hash".
std::unique_ptr<LeaderElection> make_election(const std::string& spec,
                                              std::uint32_t num_replicas,
                                              std::uint64_t seed);

}  // namespace bamboo::election
