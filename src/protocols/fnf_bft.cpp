#include "protocols/fnf_bft.h"

namespace bamboo::protocols {

using types::BlockPtr;
using types::QuorumCert;

namespace {

[[nodiscard]] core::SlotRef ref_of(const types::Block& b) {
  return core::SlotRef{b.view(), b.slot()};
}

[[nodiscard]] core::SlotRef ref_of(const QuorumCert& qc) {
  return core::SlotRef{qc.view, qc.slot};
}

/// X occupies the proposal slot immediately after P: same view and the
/// next slot, or slot 0 of the directly following view. The contiguity
/// that makes the two-chain commit sound at slot granularity — no
/// certifiable slot fits between P and X.
[[nodiscard]] bool contiguous(const types::Block& p, const types::Block& x) {
  if (x.view() == p.view() && x.slot() == p.slot() + 1) return true;
  return x.view() == p.view() + 1 && x.slot() == 0;
}

}  // namespace

std::optional<core::ProposalPlan> FnfBft::plan_proposal(
    types::View, const core::ProtocolContext& ctx) {
  // Slot 0 (view entry): extend the high-QC tip, like the HotStuff family.
  // Certified blocks from a timed-out view's early slots survive the view
  // change through this plan — the chain-quality advantage of slot QCs.
  const BlockPtr parent = ctx.forest.high_qc_block();
  if (!parent) return std::nullopt;
  return core::ProposalPlan{parent, ctx.forest.high_qc()};
}

std::optional<core::ProposalPlan> FnfBft::plan_slot_proposal(
    types::View, types::Slot, const core::ProtocolContext& ctx) {
  // Later slots: the engine supplies the parent (the previous slot's
  // block, extended optimistically); the protocol supplies the justify —
  // the freshest certificate this leader holds.
  const BlockPtr high = ctx.forest.high_qc_block();
  if (!high) return std::nullopt;
  return core::ProposalPlan{high, ctx.forest.high_qc()};
}

bool FnfBft::should_vote(const types::ProposalMsg& proposal,
                         const core::ProtocolContext& ctx) {
  const BlockPtr& b = proposal.block;
  // (view, slot)-monotone voting: at most one vote per slot, never
  // backwards. QC uniqueness per slot follows from quorum intersection.
  if (!(last_voted_ < ref_of(*b))) return false;
  // Safe-to-vote: the block extends our lock (the usual case — pipelined
  // slot blocks extend the certified prefix of their view), or it
  // justifies with a certificate strictly fresher than the lock (the
  // view-change unlock, 2CHS-style with (view, slot) order).
  if (!has_lock_) return true;
  if (ctx.forest.extends(b->hash(), locked_hash_)) return true;
  return locked_ < ref_of(b->justify());
}

void FnfBft::did_vote(const types::Block& block) {
  const core::SlotRef ref = ref_of(block);
  if (last_voted_ < ref) last_voted_ = ref;
}

void FnfBft::update_state(const QuorumCert& qc,
                          const core::ProtocolContext&) {
  // Lock the highest-(view, slot) certified block.
  const core::SlotRef ref = ref_of(qc);
  if (!has_lock_ || locked_ < ref) {
    locked_ = ref;
    locked_hash_ = qc.block_hash;
    has_lock_ = true;
  }
}

std::optional<crypto::Digest> FnfBft::commit_target(
    const QuorumCert& qc, const core::ProtocolContext& ctx) {
  const BlockPtr x = ctx.forest.get(qc.block_hash);
  if (!x) return std::nullopt;

  // Case A: this QC completes a two-chain ending at X — its direct parent
  // P is certified and X sits in the immediately following slot. Commit P
  // (the forest commits P's whole prefix with it).
  if (const BlockPtr p = ctx.forest.get(x->parent_hash());
      p && !p->is_genesis() && ctx.forest.is_certified(p->hash()) &&
      contiguous(*p, *x) && p->height() > ctx.forest.committed_height()) {
    return p->hash();
  }

  // Case B: slot QCs broadcast concurrently can arrive out of order — X's
  // own certificate may land AFTER a contiguous child was already
  // certified. The earlier commit check could not see X certified, so
  // complete it now.
  if (x->height() > ctx.forest.committed_height()) {
    for (const BlockPtr& child : ctx.forest.children(x->hash())) {
      if (ctx.forest.is_certified(child->hash()) && contiguous(*x, *child)) {
        return x->hash();
      }
    }
  }
  return std::nullopt;
}

}  // namespace bamboo::protocols
