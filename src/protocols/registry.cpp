#include "protocols/registry.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "protocols/fast_hotstuff.h"
#include "protocols/fnf_bft.h"
#include "protocols/hotstuff.h"
#include "protocols/streamlet.h"

namespace bamboo::protocols {

namespace {

// The custom registry is read concurrently by harness::ParallelRunner
// workers instantiating replicas; registration (rare, usually before any
// parallel run) takes the writer side.
std::shared_mutex& registry_mutex() {
  static std::shared_mutex mu;
  return mu;
}

std::map<std::string, ProtocolFactory>& custom_registry() {
  static std::map<std::string, ProtocolFactory> registry;
  return registry;
}

bool is_builtin(const std::string& name) {
  return name == "hotstuff" || name == "hs" || name == "ohs" ||
         name == "2chs" || name == "twochain" || name == "2-chain" ||
         name == "streamlet" || name == "sl" || name == "fasthotstuff" ||
         name == "fhs" || name == "fast-hotstuff" || name == "fnfbft" ||
         name == "fnf" || name == "fnf-bft";
}

}  // namespace

std::unique_ptr<core::SafetyProtocol> make_protocol(const std::string& name) {
  if (name == "hotstuff" || name == "hs" || name == "ohs") {
    return std::make_unique<HotStuff>();
  }
  if (name == "2chs" || name == "twochain" || name == "2-chain") {
    return std::make_unique<TwoChainHotStuff>();
  }
  if (name == "streamlet" || name == "sl") {
    return std::make_unique<Streamlet>();
  }
  if (name == "fasthotstuff" || name == "fhs" || name == "fast-hotstuff") {
    return std::make_unique<FastHotStuff>();
  }
  if (name == "fnfbft" || name == "fnf" || name == "fnf-bft") {
    return std::make_unique<FnfBft>();
  }
  ProtocolFactory factory;
  {
    std::shared_lock lock(registry_mutex());
    const auto it = custom_registry().find(name);
    if (it != custom_registry().end()) factory = it->second;
  }
  if (factory) return factory();
  throw std::invalid_argument("unknown protocol: " + name);
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names = {"hotstuff", "2chs", "streamlet",
                                    "fasthotstuff", "fnfbft"};
  std::shared_lock lock(registry_mutex());
  for (const auto& [name, factory] : custom_registry()) {
    names.push_back(name);
  }
  return names;
}

void register_protocol(const std::string& name, ProtocolFactory factory) {
  if (is_builtin(name)) {
    throw std::invalid_argument("cannot shadow built-in protocol: " + name);
  }
  if (!factory) {
    throw std::invalid_argument("protocol factory must not be empty");
  }
  std::unique_lock lock(registry_mutex());
  custom_registry()[name] = std::move(factory);
}

}  // namespace bamboo::protocols
