#include "protocols/streamlet.h"

namespace bamboo::protocols {

using types::BlockPtr;
using types::QuorumCert;

std::optional<core::ProposalPlan> Streamlet::plan_proposal(
    types::View, const core::ProtocolContext& ctx) {
  // Proposing rule: extend the tip of the longest notarized chain.
  const BlockPtr parent = ctx.forest.longest_certified_tip();
  if (!parent) return std::nullopt;
  const QuorumCert* qc = ctx.forest.qc_for(parent->hash());
  if (qc == nullptr) return std::nullopt;
  return core::ProposalPlan{parent, *qc};
}

bool Streamlet::should_vote(const types::ProposalMsg& proposal,
                            const core::ProtocolContext& ctx) {
  const BlockPtr& b = proposal.block;
  // One vote per view ("vote for the first proposal").
  if (b->view() <= last_voted_view_) return false;
  // The parent must be notarized and a tip of a longest notarized chain
  // (>= allows ties between equal-length notarized chains).
  const BlockPtr parent = ctx.forest.get(b->parent_hash());
  if (!parent || !ctx.forest.is_certified(parent->hash())) return false;
  return parent->height() >= ctx.forest.longest_certified_tip()->height();
}

void Streamlet::did_vote(const types::Block& block) {
  if (block.view() > last_voted_view_) last_voted_view_ = block.view();
}

void Streamlet::update_state(const QuorumCert& qc,
                             const core::ProtocolContext&) {
  // State-Updating rule: maintain the notarized chain. The forest already
  // indexes certified blocks and the longest notarized tip; we only track
  // the highest certified view for introspection.
  if (qc.view > highest_certified_view_) highest_certified_view_ = qc.view;
}

bool Streamlet::consecutive_trio(const BlockPtr& a, const BlockPtr& b,
                                 const BlockPtr& c,
                                 const core::ProtocolContext& ctx) {
  if (!a || !b || !c) return false;
  if (b->parent_hash() != a->hash() || c->parent_hash() != b->hash()) {
    return false;
  }
  if (b->view() != a->view() + 1 || c->view() != b->view() + 1) return false;
  return ctx.forest.is_certified(a->hash()) &&
         ctx.forest.is_certified(b->hash()) &&
         ctx.forest.is_certified(c->hash());
}

std::optional<crypto::Digest> Streamlet::commit_target(
    const QuorumCert& qc, const core::ProtocolContext& ctx) {
  // Commit rule: three blocks certified in consecutive views commit the
  // first two. The newly certified block can be the tail, middle, or head
  // of such a trio (votes are broadcast, so QCs can complete out of order).
  const BlockPtr x = ctx.forest.get(qc.block_hash);
  if (!x) return std::nullopt;

  const BlockPtr parent = ctx.forest.get(x->parent_hash());
  const BlockPtr grandparent =
      parent ? ctx.forest.get(parent->parent_hash()) : nullptr;

  BlockPtr target;  // the middle block of the best satisfied trio
  if (consecutive_trio(grandparent, parent, x, ctx)) target = parent;

  for (const BlockPtr& child : ctx.forest.children(x->hash())) {
    if (consecutive_trio(parent, x, child, ctx) &&
        (!target || x->height() > target->height())) {
      target = x;
    }
    for (const BlockPtr& grandchild : ctx.forest.children(child->hash())) {
      if (consecutive_trio(x, child, grandchild, ctx) &&
          (!target || child->height() > target->height())) {
        target = child;
      }
    }
  }

  if (!target) return std::nullopt;
  if (target->height() <= ctx.forest.committed_height()) return std::nullopt;
  return target->hash();
}

}  // namespace bamboo::protocols
