#pragma once

#include "core/safety.h"

namespace bamboo::protocols {

/// Shared machinery of the HotStuff lineage (paper §II-B/§II-C): propose on
/// the highest QC; vote if the block is newer than the last voted view and
/// either extends the locked block or carries a justify QC from a higher
/// view than the lock. Subclasses choose where the lock lives and how long
/// the commit chain is.
class HotStuffFamily : public core::SafetyProtocol {
 public:
  HotStuffFamily();

  [[nodiscard]] std::optional<core::ProposalPlan> plan_proposal(
      types::View view, const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool should_vote(const types::ProposalMsg& proposal,
                                 const core::ProtocolContext& ctx) override;

  void did_vote(const types::Block& block) override;

  [[nodiscard]] types::View locked_view() const override { return lock_view_; }
  [[nodiscard]] types::View last_voted_view() const override {
    return last_voted_view_;
  }

 protected:
  /// Move the lock to `block` if it is newer than the current lock.
  void maybe_lock(const types::BlockPtr& block);

  types::View last_voted_view_ = 0;
  types::View lock_view_ = 0;
  crypto::Digest lock_hash_{};
};

/// Chained HotStuff (Yin et al., PODC'19): three-chain commit rule, lock on
/// the head of the highest two-chain. One round slower to commit than the
/// two-chain variant but optimistically responsive — leaders make progress
/// at network speed after a view change (paper §II-B, §VI-D).
class HotStuff final : public HotStuffFamily {
 public:
  [[nodiscard]] std::string name() const override { return "hotstuff"; }

  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const core::ProtocolContext& ctx) override;

  /// The forking attack can overwrite the two uncommitted blocks above the
  /// honest lock (Fig. 5).
  [[nodiscard]] std::uint32_t fork_depth() const override { return 2; }
  [[nodiscard]] std::uint32_t commit_chain_length() const override {
    return 3;
  }
};

/// Two-chain HotStuff (paper §II-C): two-chain commit rule, lock on the
/// head of the highest one-chain (the highest certified block). One round
/// of voting faster than HotStuff, but not responsive: after a view change
/// the leader must wait for the maximal network delay to learn the highest
/// lock, or risk proposals that locked replicas reject.
class TwoChainHotStuff final : public HotStuffFamily {
 public:
  [[nodiscard]] std::string name() const override { return "2chs"; }

  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const core::ProtocolContext& ctx) override;

  /// The forking attack can overwrite one uncommitted block (Fig. 5).
  [[nodiscard]] std::uint32_t fork_depth() const override { return 1; }
  [[nodiscard]] std::uint32_t commit_chain_length() const override {
    return 2;
  }
};

}  // namespace bamboo::protocols
