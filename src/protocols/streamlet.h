#pragma once

#include "core/safety.h"

namespace bamboo::protocols {

/// Streamlet (Chan & Shi, 2020), adapted as in the paper §II-D: the
/// synchronized 2Δ clock is replaced by the shared Pacemaker so that all
/// three protocols ride identical view-synchronization machinery.
///
/// Rules: propose on the tip of the longest notarized (certified) chain;
/// vote for the first proposal of the view iff it extends a longest
/// notarized chain; commit the first two of any three blocks certified in
/// consecutive views. Votes are broadcast and every first-seen message is
/// echoed — O(n^3) communication, in exchange for immunity to the forking
/// attack (honest replicas never vote off the longest chain).
class Streamlet final : public core::SafetyProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "streamlet"; }

  [[nodiscard]] std::optional<core::ProposalPlan> plan_proposal(
      types::View view, const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool should_vote(const types::ProposalMsg& proposal,
                                 const core::ProtocolContext& ctx) override;

  void did_vote(const types::Block& block) override;

  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool broadcast_votes() const override { return true; }
  [[nodiscard]] bool echo_messages() const override { return true; }

  /// Honest replicas only vote on the longest notarized chain, so a forking
  /// proposal can never gather a quorum: immune (paper Fig. 13).
  [[nodiscard]] std::uint32_t fork_depth() const override { return 0; }
  [[nodiscard]] std::uint32_t commit_chain_length() const override {
    return 2;
  }

  [[nodiscard]] types::View locked_view() const override {
    return highest_certified_view_;
  }
  [[nodiscard]] types::View last_voted_view() const override {
    return last_voted_view_;
  }

 private:
  /// True when (a, b, c) are certified blocks in three consecutive views
  /// linked by direct parent edges; commits b (and the prefix).
  [[nodiscard]] static bool consecutive_trio(const types::BlockPtr& a,
                                             const types::BlockPtr& b,
                                             const types::BlockPtr& c,
                                             const core::ProtocolContext& ctx);

  types::View last_voted_view_ = 0;
  types::View highest_certified_view_ = 0;
};

}  // namespace bamboo::protocols
