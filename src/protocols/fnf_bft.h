#pragma once

#include "core/safety.h"

namespace bamboo::protocols {

/// FnF-BFT-inspired multi-leader chained BFT (PAPERS.md: "FnF-BFT:
/// Exploring Performance Limits of BFT Protocols"). Every view has W
/// parallel slot leaders (election width); slot 0 extends the high-QC
/// tip, and each later slot leader extends the previous slot's block
/// *optimistically* on proposal receipt — one network hop per block
/// instead of the QC round trip — while votes flow back to each block's
/// own proposer, who aggregates its QC and broadcasts it (QcMsg, verified
/// at every ingress by the CertVerifier pipeline). Leader sets rotate per
/// epoch of the election; accumulated timeouts advance views through TCs,
/// so a degraded leader set burns through its epoch at timeout speed and
/// is rotated out within epoch_len views.
///
/// Commit rule: a certified block P commits once a certified block X
/// exists with parent(X) == P in the immediately following slot — same
/// view and slot+1, or slot 0 of the directly next view — a two-chain
/// rule at slot granularity (Fast-HotStuff's contiguity argument with
/// (view, slot) in place of view). Lock: the highest-(view, slot)
/// certified block; votes require extending the lock or a strictly
/// fresher justify, and (view, slot)-monotone voting makes QCs unique per
/// slot.
class FnfBft final : public core::SafetyProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "fnfbft"; }

  [[nodiscard]] std::optional<core::ProposalPlan> plan_proposal(
      types::View view, const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<core::ProposalPlan> plan_slot_proposal(
      types::View view, types::Slot slot,
      const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool should_vote(const types::ProposalMsg& proposal,
                                 const core::ProtocolContext& ctx) override;

  void did_vote(const types::Block& block) override;

  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool multi_leader() const override { return true; }

  /// The lock chases the highest certified block, so a forking proposer
  /// can overwrite at most the one still-uncertified tail block of a slot
  /// chain (like 2CHS).
  [[nodiscard]] std::uint32_t fork_depth() const override { return 1; }
  [[nodiscard]] std::uint32_t commit_chain_length() const override {
    return 2;
  }

  [[nodiscard]] types::View locked_view() const override {
    return locked_.view;
  }
  [[nodiscard]] types::View last_voted_view() const override {
    return last_voted_.view;
  }
  [[nodiscard]] core::SlotRef locked_ref() const { return locked_; }
  [[nodiscard]] core::SlotRef last_voted_ref() const { return last_voted_; }

 private:
  core::SlotRef last_voted_;
  core::SlotRef locked_;
  crypto::Digest locked_hash_{};
  bool has_lock_ = false;
};

}  // namespace bamboo::protocols
