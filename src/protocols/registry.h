#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/safety.h"

namespace bamboo::protocols {

/// Instantiate a protocol by name: "hotstuff", "2chs" (or "twochain"),
/// "streamlet", "fasthotstuff" ("fhs"), "ohs" (HotStuff rules; the
/// libhotstuff cost profile is applied by the harness), or any name
/// registered via register_protocol. Throws std::invalid_argument on
/// unknown names.
[[nodiscard]] std::unique_ptr<core::SafetyProtocol> make_protocol(
    const std::string& name);

/// Names accepted by make_protocol (canonical spellings).
[[nodiscard]] std::vector<std::string> protocol_names();

/// Factory for a user-defined protocol (one fresh instance per replica).
using ProtocolFactory =
    std::function<std::unique_ptr<core::SafetyProtocol>()>;

/// Register a custom protocol under `name` so that Config::protocol and the
/// whole harness can drive it — the prototyping workflow the paper builds
/// Bamboo for (see examples/protocol_designer.cpp). Re-registering a name
/// replaces the previous factory; built-in names cannot be shadowed.
void register_protocol(const std::string& name, ProtocolFactory factory);

}  // namespace bamboo::protocols
