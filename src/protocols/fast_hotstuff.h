#pragma once

#include "core/safety.h"

namespace bamboo::protocols {

/// Fast-HotStuff (Jalalzai, Niu & Feng, 2020) — one of the protocols the
/// paper built with Bamboo (§I). Two-chain commits like 2CHS, but it keeps
/// responsiveness: after a view change the proposal carries the TC as an
/// aggregated-QC proof that its parent is the highest QC among 2f+1
/// replicas, so voters do not need a lock-based wait. The price is a
/// stricter happy-path voting rule (the justify must certify the direct
/// parent from the immediately preceding view), which also closes the
/// forking attack.
class FastHotStuff final : public core::SafetyProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "fasthotstuff"; }

  [[nodiscard]] std::optional<core::ProposalPlan> plan_proposal(
      types::View view, const core::ProtocolContext& ctx) override;

  [[nodiscard]] bool should_vote(const types::ProposalMsg& proposal,
                                 const core::ProtocolContext& ctx) override;

  void did_vote(const types::Block& block) override;

  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext& ctx) override;

  [[nodiscard]] std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const core::ProtocolContext& ctx) override;

  /// Happy-path voting requires parent certification from the directly
  /// preceding view, so stale-ancestor forks are rejected outright.
  [[nodiscard]] std::uint32_t fork_depth() const override { return 0; }
  [[nodiscard]] std::uint32_t commit_chain_length() const override {
    return 2;
  }

  [[nodiscard]] types::View locked_view() const override {
    return high_qc_view_;
  }
  [[nodiscard]] types::View last_voted_view() const override {
    return last_voted_view_;
  }

 private:
  types::View last_voted_view_ = 0;
  types::View high_qc_view_ = 0;
};

}  // namespace bamboo::protocols
