#include "protocols/hotstuff.h"

namespace bamboo::protocols {

using types::BlockPtr;
using types::QuorumCert;

HotStuffFamily::HotStuffFamily() {
  lock_hash_ = types::Block::genesis()->hash();
  lock_view_ = types::kGenesisView;
}

std::optional<core::ProposalPlan> HotStuffFamily::plan_proposal(
    types::View, const core::ProtocolContext& ctx) {
  // Proposing rule: build on the block certified by the highest QC.
  const BlockPtr parent = ctx.forest.high_qc_block();
  if (!parent) return std::nullopt;
  return core::ProposalPlan{parent, ctx.forest.high_qc()};
}

bool HotStuffFamily::should_vote(const types::ProposalMsg& proposal,
                                 const core::ProtocolContext& ctx) {
  const BlockPtr& b = proposal.block;
  // (1) Newer than anything we voted for.
  if (b->view() <= last_voted_view_) return false;
  // (2) Safety: extends the locked block, or — the liveness escape hatch —
  // its justify QC is from a higher view than our lock.
  if (ctx.forest.extends(b->hash(), lock_hash_)) return true;
  return b->justify().view > lock_view_;
}

void HotStuffFamily::did_vote(const types::Block& block) {
  if (block.view() > last_voted_view_) last_voted_view_ = block.view();
}

void HotStuffFamily::maybe_lock(const BlockPtr& block) {
  if (block && block->view() > lock_view_) {
    lock_view_ = block->view();
    lock_hash_ = block->hash();
  }
}

// ---------------------------------------------------------------------------
// HotStuff (three-chain)
// ---------------------------------------------------------------------------

void HotStuff::update_state(const QuorumCert& qc,
                            const core::ProtocolContext& ctx) {
  // State-Updating rule: a QC for b makes b the tail of a one-chain; if b's
  // justify certifies its direct parent, that parent heads a two-chain —
  // the new lock candidate.
  const BlockPtr b = ctx.forest.get(qc.block_hash);
  if (!b || !b->justify_is_parent()) return;
  maybe_lock(ctx.forest.get(b->parent_hash()));
}

std::optional<crypto::Digest> HotStuff::commit_target(
    const QuorumCert& qc, const core::ProtocolContext& ctx) {
  // Commit rule (PODC'19): a three-chain b3 <- b2 <- b1 of certified blocks
  // linked by *direct parent* edges commits b3 and its whole prefix. Views
  // may skip numbers across the chain (Fig. 2: QC_v4 does not commit b_v1
  // because b_v3's parent is the forked b_v2, not b_v1; QC_v5 commits b_v3
  // through the direct chain b_v3 <- b_v4 <- b_v5).
  //
  // Deliberately NOT the LibraBFT contiguous-round variant: with
  // round-robin leaders and votes routed to the next leader, a single
  // crashed replica at N=4 suppresses every fourth QC, so three
  // consecutively-certified views never occur and the contiguous rule
  // commits nothing — which would contradict the paper's own Fig. 15
  // (HotStuff progressing under the crashed node). See EXPERIMENTS.md.
  const BlockPtr b1 = ctx.forest.get(qc.block_hash);
  if (!b1 || !b1->justify_is_parent()) return std::nullopt;
  const BlockPtr b2 = ctx.forest.get(b1->parent_hash());
  if (!b2 || !b2->justify_is_parent()) return std::nullopt;
  const BlockPtr b3 = ctx.forest.get(b2->parent_hash());
  if (!b3) return std::nullopt;
  if (b3->height() <= ctx.forest.committed_height()) return std::nullopt;
  return b3->hash();
}

// ---------------------------------------------------------------------------
// Two-chain HotStuff
// ---------------------------------------------------------------------------

void TwoChainHotStuff::update_state(const QuorumCert& qc,
                                    const core::ProtocolContext& ctx) {
  // Lock on the head of the highest one-chain: the certified block itself.
  maybe_lock(ctx.forest.get(qc.block_hash));
}

std::optional<crypto::Digest> TwoChainHotStuff::commit_target(
    const QuorumCert& qc, const core::ProtocolContext& ctx) {
  // Commit rule: a two-chain b2 <- b1 of certified blocks with a direct
  // parent link in consecutive views commits b2 (and its prefix). Unlike
  // the three-chain rule, a two-chain commit *requires* view contiguity
  // for safety (the Jolteon/DiemBFT rule): without it, a QC formed in a
  // much later view can certify a conflicting branch.
  const BlockPtr b1 = ctx.forest.get(qc.block_hash);
  if (!b1 || !b1->justify_is_parent()) return std::nullopt;
  const BlockPtr b2 = ctx.forest.get(b1->parent_hash());
  if (!b2) return std::nullopt;
  if (b1->view() != b2->view() + 1) return std::nullopt;
  if (b2->height() <= ctx.forest.committed_height()) return std::nullopt;
  return b2->hash();
}

}  // namespace bamboo::protocols
