#include "protocols/fast_hotstuff.h"

#include <algorithm>

namespace bamboo::protocols {

using types::BlockPtr;
using types::QuorumCert;

std::optional<core::ProposalPlan> FastHotStuff::plan_proposal(
    types::View, const core::ProtocolContext& ctx) {
  const BlockPtr parent = ctx.forest.high_qc_block();
  if (!parent) return std::nullopt;
  return core::ProposalPlan{parent, ctx.forest.high_qc()};
}

bool FastHotStuff::should_vote(const types::ProposalMsg& proposal,
                               const core::ProtocolContext&) {
  const BlockPtr& b = proposal.block;
  if (b->view() <= last_voted_view_) return false;
  // The justify must certify the direct parent in both paths.
  if (!b->justify_is_parent()) return false;

  if (b->view() == b->justify().view + 1) {
    return true;  // happy path: fresh QC from the immediately prior view
  }
  // View-change path: the proposal must carry a TC for view-1 whose
  // aggregated high-QC views prove the parent is the freshest certified
  // block any of 2f+1 replicas know. Certificate verification
  // (quorum/cert_verifier.h) runs before any proposal reaches this rule
  // and enforces high_qc.view == max(reported_qc_views), so the TC's
  // high_qc view IS that maximum — no need to recompute it here.
  if (!proposal.tc || proposal.tc->view + 1 != b->view()) return false;
  if (proposal.tc->reported_qc_views.empty()) return false;
  return b->justify().view >= proposal.tc->high_qc.view;
}

void FastHotStuff::did_vote(const types::Block& block) {
  if (block.view() > last_voted_view_) last_voted_view_ = block.view();
}

void FastHotStuff::update_state(const QuorumCert& qc,
                                const core::ProtocolContext&) {
  if (qc.view > high_qc_view_) high_qc_view_ = qc.view;
}

std::optional<crypto::Digest> FastHotStuff::commit_target(
    const QuorumCert& qc, const core::ProtocolContext& ctx) {
  // Two-chain commit with consecutive views: QC on b1 where b1.justify
  // certifies the direct parent from view-1 commits the parent.
  const BlockPtr b1 = ctx.forest.get(qc.block_hash);
  if (!b1 || !b1->justify_is_parent()) return std::nullopt;
  if (b1->view() != b1->justify().view + 1) return std::nullopt;
  const BlockPtr b2 = ctx.forest.get(b1->parent_hash());
  if (!b2) return std::nullopt;
  if (b2->height() <= ctx.forest.committed_height()) return std::nullopt;
  return b2->hash();
}

}  // namespace bamboo::protocols
