#include "harness/cluster.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <sstream>

#include "crypto/sha256.h"
#include "protocols/registry.h"

namespace bamboo::harness {

namespace {

/// The "ohs" baseline is HotStuff under the libhotstuff cost profile: the
/// paper attributes the original implementation's edge to its TCP client
/// path and batching (no HTTP request handling), which shows up as a lower
/// per-transaction ingest cost (DESIGN.md §1).
core::Config apply_protocol_profile(core::Config cfg) {
  if (cfg.protocol == "ohs") {
    cfg.cpu_ingest_per_tx = sim::microseconds(6);
  }
  return cfg;
}

net::NetConfig net_config_of(const core::Config& cfg) {
  net::NetConfig nc;
  nc.bandwidth_bps = cfg.bandwidth_bps;
  nc.rtt_mean = cfg.rtt_mean;
  nc.rtt_stddev = cfg.rtt_stddev;
  nc.added_delay = cfg.delay;
  nc.added_delay_jitter = cfg.delay_jitter;
  nc.min_one_way = cfg.min_one_way_delay;
  nc.link_model = cfg.link_model;
  nc.link_shape = cfg.link_shape;
  nc.link_loss = cfg.link_loss;
  nc.topology = cfg.topology;
  nc.ge_p = cfg.ge_p;
  nc.ge_r = cfg.ge_r;
  nc.ge_loss_good = cfg.ge_loss_good;
  nc.ge_loss_bad = cfg.ge_loss_bad;
  nc.n_replicas = cfg.n_replicas;
  return nc;
}

/// Process-wide sequence for auto-generated store directories: two
/// clusters in one process (or one test re-running) never collide. The
/// path is outside the simulation — it never affects schedules.
std::string next_store_dir() {
  static std::atomic<std::uint64_t> seq{0};
  const auto base = std::filesystem::temp_directory_path() /
                    ("bamboo-ledger-" + std::to_string(::getpid()) + "-" +
                     std::to_string(seq.fetch_add(1)));
  return base.string();
}

/// Field-wise accumulate (restart_replica's retired bookkeeping).
void fold(core::ReplicaStats& into, const core::ReplicaStats& s) {
  into.blocks_proposed += s.blocks_proposed;
  into.blocks_received += s.blocks_received;
  into.blocks_committed += s.blocks_committed;
  into.blocks_forked += s.blocks_forked;
  into.txs_committed += s.txs_committed;
  into.votes_sent += s.votes_sent;
  into.msgs_handled += s.msgs_handled;
  into.client_rejections += s.client_rejections;
  into.safety_violations += s.safety_violations;
  into.certs_verified += s.certs_verified;
  into.certs_rejected += s.certs_rejected;
  into.cpu_busy += s.cpu_busy;
}

void fold(sync::SyncStats& into, const sync::SyncStats& s) {
  into.requests_sent += s.requests_sent;
  into.timeouts += s.timeouts;
  into.retries += s.retries;
  into.exhausted += s.exhausted;
  into.responses_applied += s.responses_applied;
  into.responses_rejected += s.responses_rejected;
  into.blocks_applied += s.blocks_applied;
  into.blocks_rejected += s.blocks_rejected;
  into.bytes_received += s.bytes_received;
  into.requests_served += s.requests_served;
  into.blocks_served += s.blocks_served;
  into.snapshots_requested += s.snapshots_requested;
  into.snapshots_served += s.snapshots_served;
  into.snapshot_chunks_received += s.snapshot_chunks_received;
  into.snapshot_bytes_received += s.snapshot_bytes_received;
  into.snapshots_installed += s.snapshots_installed;
  into.snapshots_rejected += s.snapshots_rejected;
}

}  // namespace

Cluster::Cluster(core::Config config)
    : cfg_(apply_protocol_profile(std::move(config))),
      sim_(cfg_.seed),
      keys_(cfg_.seed ^ 0x9e3779b97f4a7c15ULL, cfg_.num_endpoints()),
      net_(sim_, cfg_.num_endpoints(), net_config_of(cfg_)),
      election_(election::make_election(cfg_.election, cfg_.n_replicas,
                                        cfg_.seed)),
      pending_hooks_(cfg_.n_replicas) {
  cfg_.validate();
}

Cluster::~Cluster() {
  // Replicas hold raw pointers into stores_: tear them down first.
  replicas_.clear();
  stores_.clear();
  if (owns_store_dir_ && !store_dir_.empty()) {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(store_dir_, ec);
  }
}

void Cluster::set_hooks(types::NodeId id, core::Replica::Hooks hooks) {
  pending_hooks_.at(id) = std::move(hooks);
}

void Cluster::add_view_listener(
    std::function<void(types::NodeId, types::View)> listener) {
  view_listeners_.push_back(std::move(listener));
}

void Cluster::start() {
  if (started_) return;
  started_ = true;
  // Protocol <-> election compatibility: multi-leader protocols need a
  // multi-leader election (and vice versa); a width the protocol does not
  // expect would silently degrade into one-leader-per-view behavior.
  {
    const auto probe = protocols::make_protocol(cfg_.protocol);
    if (probe->multi_leader() != (election_->width() > 1)) {
      throw std::invalid_argument(
          probe->multi_leader()
              ? "protocol '" + cfg_.protocol +
                    "' is multi-leader and needs a multi:<width> election "
                    "(got '" + cfg_.election + "')"
              : "election '" + cfg_.election +
                    "' is multi-leader but protocol '" + cfg_.protocol +
                    "' is not");
    }
  }
  // Durable stores are created once and outlive replica instances — the
  // point of the exercise: restart_replica rebuilds a replica from the
  // store it appended to before it died.
  if (cfg_.store == "file") {
    store_dir_ = cfg_.store_path;
    if (store_dir_.empty()) {
      store_dir_ = next_store_dir();
      owns_store_dir_ = true;
    }
    std::filesystem::create_directories(store_dir_);
  }
  stores_.reserve(cfg_.n_replicas);
  for (types::NodeId id = 0; id < cfg_.n_replicas; ++id) {
    const std::string path =
        cfg_.store == "file"
            ? (std::filesystem::path(store_dir_) /
               ("replica" + std::to_string(id) + ".blk"))
                  .string()
            : std::string();
    stores_.push_back(storage::make_store(cfg_.store, path));
  }
  replicas_.reserve(cfg_.n_replicas);
  for (types::NodeId id = 0; id < cfg_.n_replicas; ++id) {
    replicas_.push_back(build_replica(id));
  }
  for (auto& replica : replicas_) replica->start();
}

std::unique_ptr<core::Replica> Cluster::build_replica(types::NodeId id) {
  core::Replica::Hooks hooks = pending_hooks_[id];  // copy: restarts reuse
  if (!view_listeners_.empty()) {
    // Chain the cluster-wide listeners in front of any per-replica hook.
    auto user = std::move(hooks.on_enter_view);
    hooks.on_enter_view = [this, id,
                           user = std::move(user)](types::View view) {
      for (const auto& listener : view_listeners_) listener(id, view);
      if (user) user(view);
    };
  }
  auto replica = std::make_unique<core::Replica>(
      sim_, net_, keys_, cfg_, id, protocols::make_protocol(cfg_.protocol),
      *election_, std::move(hooks));
  replica->set_store(stores_.at(id).get());
  return replica;
}

void Cluster::restart_replica(types::NodeId id) {
  if (!started_) return;
  core::Replica& old = *replicas_.at(id);
  fold(retired_, old.stats());
  fold(retired_sync_, old.sync_stats());
  retired_mem_admitted_ += old.pool().admitted_count();
  retired_mem_rejected_ += old.pool().rejected_count();
  if (!old.crashed()) old.crash();  // quiesce timers before the swap
  ++restarts_;
  replicas_.at(id) = build_replica(id);
  net_.set_down(id, false);  // crash() downed the NIC; bring it back
  replicas_.at(id)->reload_from_store();
  replicas_.at(id)->start();
}

Cluster::ConsistencyReport Cluster::check_consistency() const {
  ConsistencyReport report;
  const core::Replica* reference = nullptr;
  types::Height min_h = 0;
  types::Height max_h = 0;
  bool first = true;

  for (const auto& replica : replicas_) {
    if (replica->is_byzantine() || replica->crashed()) continue;
    const types::Height h = replica->forest().committed_height();
    if (first) {
      reference = replica.get();
      min_h = max_h = h;
      first = false;
      continue;
    }
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);

    // Compare committed hashes up to the common height.
    const types::Height common =
        std::min(h, reference->forest().committed_height());
    for (types::Height level = 0; level <= common; ++level) {
      const auto a = reference->forest().committed_hash_at(level);
      const auto b = replica->forest().committed_hash_at(level);
      if (a != b) {
        report.consistent = false;
        std::ostringstream oss;
        oss << "replica " << replica->id() << " disagrees with replica "
            << reference->id() << " at height " << level;
        report.detail = oss.str();
        return report;
      }
    }
  }
  report.min_committed_height = min_h;
  report.max_committed_height = max_h;
  return report;
}

std::uint64_t Cluster::total_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) {
    if (!replica->is_byzantine() && !replica->crashed()) {
      total += replica->pm().timeouts_fired();
    }
  }
  return total;
}

}  // namespace bamboo::harness
