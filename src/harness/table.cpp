#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bamboo::harness {

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    out << "\n";
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TextTable::count(std::uint64_t value) {
  const std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace bamboo::harness
