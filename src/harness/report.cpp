#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/churn.h"
#include "sim/time.h"
#include "util/histogram.h"

namespace bamboo::harness::report {

namespace {

constexpr const char* kRecordSchema = "bamboo.report/v1";
constexpr const char* kTableSchema = "bamboo.table/v1";
constexpr const char* kManifestSchema = "bamboo.report.manifest/v1";

/// The one-sample merge harness::Aggregate::add uses; every aggregate
/// statistic must go through this exact path so regenerating a row from
/// shard files is bit-identical to the unsharded fold.
void fold(util::RunningStats& stats, double value) {
  util::RunningStats one;
  one.add(value);
  stats.merge(one);
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double v) { return util::Json::number_to_string(v); }

/// Full-width uint64 member: written as a decimal string (util::Json
/// numbers are doubles, exact only up to 2^53); numbers accepted too.
std::uint64_t get_u64(const util::Json& j, std::string_view key) {
  const util::Json* v = j.find(key);
  if (v == nullptr) return 0;
  if (v->is_string()) return std::strtoull(v->as_string().c_str(), nullptr, 10);
  if (v->is_number()) return static_cast<std::uint64_t>(v->as_int());
  return 0;
}

std::uint64_t round_u64(double v) {
  return static_cast<std::uint64_t>(std::llround(v));
}

/// Shared core of make_aggregate_record and merge_records: fold rep-order
/// results under an already-flattened base provenance.
Record aggregate_from(const std::string& bench, const std::string& artifact,
                      const std::string& series, std::uint32_t spec_index,
                      Provenance base_prov,
                      const std::vector<RunResult>& results) {
  Aggregate agg;
  util::RunningStats p50;
  util::RunningStats offered;
  util::LatencyHistogram hist;
  std::map<types::NodeId, std::uint64_t> commit_counts;
  double measured_s = 0, latency_samples = 0, views = 0, committed = 0,
         received = 0, forked = 0, timeouts = 0, rejected = 0, net_bytes = 0,
         sync_requests = 0, sync_blocks = 0, sync_bytes = 0,
         certs_verified = 0, certs_rejected = 0, recovery_ms = 0,
         recovery_reps = 0, mem_admitted = 0, mem_rejected = 0,
         disk_bytes = 0, store_reads = 0, snapshot_bytes = 0,
         snapshot_chunks = 0, snapshots_installed = 0, snapshots_rejected = 0,
         restarts = 0, wamp = 0, wamp_reps = 0;
  for (const RunResult& r : results) {
    agg.add(r);
    fold(p50, r.latency_ms_p50);
    fold(offered, r.offered_tps);
    // Histogram merge is integer bucket addition — associative, so the
    // shard-merged aggregate is bit-identical to the unsharded one, which
    // no mean-of-rep-percentiles statistic can promise.
    if (!r.latency_hist.empty()) {
      hist.merge(util::LatencyHistogram::decode(r.latency_hist));
    }
    // Commit-share merge is integer count addition too — associative for
    // the same shard-identical-to-unsharded reason as the histogram.
    for (const auto& [id, count] : decode_commit_share(r.commit_share)) {
      commit_counts[id] += count;
    }
    mem_admitted += static_cast<double>(r.mem_admitted);
    mem_rejected += static_cast<double>(r.mem_rejected);
    measured_s += r.measured_s;
    latency_samples += static_cast<double>(r.latency_samples);
    views += static_cast<double>(r.views);
    committed += static_cast<double>(r.blocks_committed);
    received += static_cast<double>(r.blocks_received);
    forked += static_cast<double>(r.blocks_forked);
    timeouts += static_cast<double>(r.timeouts);
    rejected += static_cast<double>(r.rejected);
    net_bytes += static_cast<double>(r.net_bytes);
    sync_requests += static_cast<double>(r.sync_requests);
    sync_blocks += static_cast<double>(r.sync_blocks);
    sync_bytes += static_cast<double>(r.sync_bytes);
    certs_verified += static_cast<double>(r.certs_verified);
    certs_rejected += static_cast<double>(r.certs_rejected);
    // recovery_ms == 0 means "no recovery event this rep" (the probe
    // records events only when a heal found laggards); averaging those
    // zeros in would understate the observed latency.
    if (r.recovery_ms > 0) {
      recovery_ms += r.recovery_ms;
      recovery_reps += 1;
    }
    disk_bytes += static_cast<double>(r.disk_bytes_written);
    store_reads += static_cast<double>(r.store_reads);
    snapshot_bytes += static_cast<double>(r.snapshot_bytes);
    snapshot_chunks += static_cast<double>(r.snapshot_chunks);
    snapshots_installed += static_cast<double>(r.snapshots_installed);
    snapshots_rejected += static_cast<double>(r.snapshots_rejected);
    restarts += static_cast<double>(r.restarts);
    // Same no-event convention as recovery_ms: 0 means "nothing appended".
    if (r.write_amplification > 0) {
      wamp += r.write_amplification;
      wamp_reps += 1;
    }
  }
  const double n = results.empty() ? 1.0 : static_cast<double>(results.size());

  Record rec;
  rec.bench = bench;
  rec.artifact = artifact;
  rec.series = series;
  rec.kind = "aggregate";
  rec.spec_index = spec_index;
  rec.rep = 0;
  rec.reps = static_cast<std::uint32_t>(results.size());
  rec.prov = std::move(base_prov);
  rec.prov.seed = rec.prov.base_seed;

  rec.result.throughput_tps = agg.throughput_tps.mean();
  rec.result.latency_ms_mean = agg.latency_ms_mean.mean();
  rec.result.latency_ms_p50 = p50.mean();
  rec.result.latency_ms_p99 = agg.latency_ms_p99.mean();
  rec.result.cgr_per_view = agg.cgr_per_view.mean();
  rec.result.cgr_per_block = agg.cgr_per_block.mean();
  rec.result.block_interval = agg.block_interval.mean();
  rec.result.measured_s = measured_s / n;
  rec.result.latency_samples = round_u64(latency_samples / n);
  rec.result.views = round_u64(views / n);
  rec.result.blocks_committed = round_u64(committed / n);
  rec.result.blocks_received = round_u64(received / n);
  rec.result.blocks_forked = round_u64(forked / n);
  rec.result.timeouts = round_u64(timeouts / n);
  rec.result.rejected = round_u64(rejected / n);
  rec.result.net_bytes = round_u64(net_bytes / n);
  rec.result.sync_requests = round_u64(sync_requests / n);
  rec.result.sync_blocks = round_u64(sync_blocks / n);
  rec.result.sync_bytes = round_u64(sync_bytes / n);
  rec.result.certs_verified = round_u64(certs_verified / n);
  rec.result.certs_rejected = round_u64(certs_rejected / n);
  rec.result.recovery_ms =
      recovery_reps > 0 ? recovery_ms / recovery_reps : 0.0;
  rec.result.disk_bytes_written = round_u64(disk_bytes / n);
  rec.result.write_amplification = wamp_reps > 0 ? wamp / wamp_reps : 0.0;
  rec.result.store_reads = round_u64(store_reads / n);
  rec.result.snapshot_bytes = round_u64(snapshot_bytes / n);
  rec.result.snapshot_chunks = round_u64(snapshot_chunks / n);
  rec.result.snapshots_installed = round_u64(snapshots_installed / n);
  rec.result.snapshots_rejected = round_u64(snapshots_rejected / n);
  rec.result.restarts = round_u64(restarts / n);
  rec.result.offered_tps = offered.mean();
  if (!hist.empty()) {
    // Exact pooled quantiles over every rep's samples, not a mean of
    // per-rep quantiles.
    rec.result.hist_p50_ms = hist.quantile(0.50);
    rec.result.hist_p99_ms = hist.quantile(0.99);
    rec.result.hist_p999_ms = hist.quantile(0.999);
    rec.result.latency_hist = hist.encode();
  }
  rec.result.mem_admitted = round_u64(mem_admitted / n);
  rec.result.mem_rejected = round_u64(mem_rejected / n);
  // Democracy scalars recomputed from the POOLED counts (not a mean of
  // per-rep ratios), so they weight reps by their committed blocks and
  // merge bit-identically across shards.
  rec.result.commit_share = encode_commit_share(commit_counts);
  const DemocracyScalars dem = democracy_scalars(
      commit_counts, rec.prov.n_replicas, rec.prov.byz_no);
  rec.result.chain_quality = dem.chain_quality;
  rec.result.commit_share_max = dem.commit_share_max;
  rec.result.proposer_gini = dem.proposer_gini;
  rec.result.consistent = agg.all_consistent;
  rec.result.safety_violations = agg.safety_violations;

  rec.ci.throughput_tps = agg.throughput_tps.ci95();
  rec.ci.latency_ms_mean = agg.latency_ms_mean.ci95();
  rec.ci.latency_ms_p50 = p50.ci95();
  rec.ci.latency_ms_p99 = agg.latency_ms_p99.ci95();
  rec.ci.cgr_per_view = agg.cgr_per_view.ci95();
  rec.ci.cgr_per_block = agg.cgr_per_block.ci95();
  rec.ci.block_interval = agg.block_interval.ci95();
  return rec;
}

}  // namespace

Provenance provenance_of(const RunSpec& spec, std::uint32_t rep) {
  Provenance p;
  p.protocol = spec.cfg.protocol;
  p.n_replicas = spec.cfg.n_replicas;
  p.byz_no = spec.cfg.byz_no;
  p.strategy = spec.cfg.strategy;
  p.election = spec.cfg.election;
  p.bsize = spec.cfg.bsize;
  p.psize = spec.cfg.psize;
  p.memsize = spec.cfg.memsize;
  p.delay_ms = sim::to_milliseconds(spec.cfg.delay);
  p.delay_jitter_ms = sim::to_milliseconds(spec.cfg.delay_jitter);
  p.timeout_ms = sim::to_milliseconds(spec.cfg.timeout);
  p.link_model = spec.cfg.link_model;
  p.link_shape = spec.cfg.link_shape;
  p.link_loss = spec.cfg.link_loss;
  p.topology = spec.cfg.topology;
  // The EFFECTIVE schedule — programmatic FaultPlan events followed by
  // the cfg.churn DSL, exactly what execute() installs — in canonical
  // form, so re-parsing a persisted row reproduces the executed plan
  // even for runs driven through spec.faults.
  p.churn = core::format_churn(effective_churn(spec.faults, spec.cfg));
  p.ge_p = spec.cfg.ge_p;
  p.ge_r = spec.cfg.ge_r;
  p.ge_loss_good = spec.cfg.ge_loss_good;
  p.ge_loss_bad = spec.cfg.ge_loss_bad;
  p.sync_batch = spec.cfg.sync_batch;
  p.sync_timeout_ms = sim::to_milliseconds(spec.cfg.sync_timeout);
  p.sync_retries = spec.cfg.sync_retries;
  p.sync_pipeline = spec.cfg.sync_pipeline;
  p.snapshot_gap = spec.cfg.snapshot_gap;
  p.store = spec.cfg.store;
  p.retention = spec.cfg.retention;
  p.verify_strategy = spec.cfg.verify_strategy;
  p.cpu_workers = spec.cfg.cpu_workers;
  p.cpu_verify_per_sig_us = sim::to_microseconds(spec.cfg.cpu_verify_per_sig);
  p.cpu_verify_batch_base_us =
      sim::to_microseconds(spec.cfg.cpu_verify_batch_base);
  p.cpu_verify_batch_per_sig_us =
      sim::to_microseconds(spec.cfg.cpu_verify_batch_per_sig);
  p.mode =
      spec.workload.mode == client::LoadMode::kClosedLoop ? "closed" : "open";
  p.concurrency = spec.workload.concurrency;
  p.arrival_rate_tps = spec.workload.arrival_rate_tps;
  p.arrival = spec.workload.arrival;
  p.client_population = spec.workload.client_population;
  p.admission = spec.cfg.admission;
  p.base_seed = spec.cfg.seed;
  p.seed = spec.cfg.seed + rep;
  p.warmup_s = spec.opts.warmup_s;
  p.measure_s = spec.opts.measure_s;
  p.offered = spec.offered;
  return p;
}

Record make_run_record(const std::string& bench, const std::string& artifact,
                       const std::string& series, std::uint32_t spec_index,
                       const RunSpec& spec, std::uint32_t rep,
                       std::uint32_t reps, const RunResult& result) {
  Record rec;
  rec.bench = bench;
  rec.artifact = artifact;
  rec.series = series;
  rec.kind = "run";
  rec.spec_index = spec_index;
  rec.rep = rep;
  rec.reps = reps;
  rec.prov = provenance_of(spec, rep);
  rec.result = result;
  return rec;
}

Record make_aggregate_record(const std::string& bench,
                             const std::string& artifact,
                             const std::string& series,
                             std::uint32_t spec_index, const RunSpec& spec,
                             const std::vector<RunResult>& results) {
  return aggregate_from(bench, artifact, series, spec_index,
                        provenance_of(spec, 0), results);
}

std::vector<Record> make_timeline_records(const std::string& bench,
                                          const std::string& artifact,
                                          const std::string& series,
                                          std::uint32_t spec_index,
                                          const RunSpec& spec,
                                          const RunOutput& out) {
  std::vector<Record> records;
  records.reserve(out.tx_per_s.size());
  const Provenance prov = provenance_of(spec, 0);
  for (std::size_t i = 0; i < out.tx_per_s.size(); ++i) {
    Record rec;
    rec.bench = bench;
    rec.artifact = artifact;
    rec.series = series;
    rec.kind = "timeline";
    rec.spec_index = spec_index;
    rec.rep = static_cast<std::uint32_t>(i);  // bucket index
    rec.reps = 1;
    rec.prov = prov;
    rec.prov.offered =
        i < out.bucket_start_s.size() ? out.bucket_start_s[i] : 0.0;
    rec.result.throughput_tps = out.tx_per_s[i];
    rec.result.measured_s = spec.timeline_bucket_s;
    records.push_back(std::move(rec));
  }
  return records;
}

// --- serialization ---------------------------------------------------------

const std::vector<std::string>& csv_columns() {
  static const std::vector<std::string> columns = {
      "bench", "artifact", "series", "kind", "spec_index", "rep", "reps",
      "protocol", "n_replicas", "byz_no", "strategy", "election", "bsize",
      "psize", "memsize", "delay_ms", "delay_jitter_ms", "timeout_ms",
      "link_model", "link_shape", "link_loss", "topology", "churn", "ge_p",
      "ge_r", "ge_loss_good", "ge_loss_bad", "sync_batch", "sync_timeout_ms",
      "sync_retries", "sync_pipeline", "snapshot_gap", "store", "retention",
      "verify_strategy", "cpu_workers",
      "cpu_verify_per_sig_us", "cpu_verify_batch_base_us",
      "cpu_verify_batch_per_sig_us", "mode",
      "concurrency", "arrival_rate_tps", "arrival", "client_population",
      "admission", "seed", "base_seed", "warmup_s",
      "measure_s", "offered", "throughput_tps", "throughput_tps_ci95",
      "latency_ms_mean", "latency_ms_mean_ci95", "latency_ms_p50",
      "latency_ms_p50_ci95", "latency_ms_p99", "latency_ms_p99_ci95",
      "cgr_per_view", "cgr_per_view_ci95", "cgr_per_block",
      "cgr_per_block_ci95", "block_interval", "block_interval_ci95",
      "measured_s", "latency_samples", "views", "blocks_committed",
      "blocks_received", "blocks_forked", "timeouts", "rejected", "net_bytes",
      "sync_requests", "sync_blocks", "sync_bytes", "certs_verified",
      "certs_rejected", "recovery_ms", "disk_bytes_written",
      "write_amplification", "store_reads", "snapshot_bytes",
      "snapshot_chunks", "snapshots_installed", "snapshots_rejected",
      "restarts",
      "offered_tps", "hist_p50_ms", "hist_p99_ms", "hist_p999_ms",
      "mem_admitted", "mem_rejected", "latency_hist",
      "commit_share", "chain_quality", "commit_share_max", "proposer_gini",
      "consistent", "safety_violations"};
  return columns;
}

std::string csv_header() {
  std::string out;
  for (const std::string& c : csv_columns()) {
    if (!out.empty()) out += ',';
    out += c;
  }
  return out;
}

std::string csv_row(const Record& r) {
  const std::vector<std::string> cells = {
      csv_escape(r.bench),
      csv_escape(r.artifact),
      csv_escape(r.series),
      csv_escape(r.kind),
      std::to_string(r.spec_index),
      std::to_string(r.rep),
      std::to_string(r.reps),
      csv_escape(r.prov.protocol),
      std::to_string(r.prov.n_replicas),
      std::to_string(r.prov.byz_no),
      csv_escape(r.prov.strategy),
      csv_escape(r.prov.election),
      std::to_string(r.prov.bsize),
      std::to_string(r.prov.psize),
      std::to_string(r.prov.memsize),
      num(r.prov.delay_ms),
      num(r.prov.delay_jitter_ms),
      num(r.prov.timeout_ms),
      csv_escape(r.prov.link_model),
      num(r.prov.link_shape),
      num(r.prov.link_loss),
      csv_escape(r.prov.topology),
      csv_escape(r.prov.churn),
      num(r.prov.ge_p),
      num(r.prov.ge_r),
      num(r.prov.ge_loss_good),
      num(r.prov.ge_loss_bad),
      std::to_string(r.prov.sync_batch),
      num(r.prov.sync_timeout_ms),
      std::to_string(r.prov.sync_retries),
      std::to_string(r.prov.sync_pipeline),
      std::to_string(r.prov.snapshot_gap),
      csv_escape(r.prov.store),
      std::to_string(r.prov.retention),
      csv_escape(r.prov.verify_strategy),
      std::to_string(r.prov.cpu_workers),
      num(r.prov.cpu_verify_per_sig_us),
      num(r.prov.cpu_verify_batch_base_us),
      num(r.prov.cpu_verify_batch_per_sig_us),
      csv_escape(r.prov.mode),
      std::to_string(r.prov.concurrency),
      num(r.prov.arrival_rate_tps),
      csv_escape(r.prov.arrival),
      std::to_string(r.prov.client_population),
      csv_escape(r.prov.admission),
      std::to_string(r.prov.seed),
      std::to_string(r.prov.base_seed),
      num(r.prov.warmup_s),
      num(r.prov.measure_s),
      num(r.prov.offered),
      num(r.result.throughput_tps),
      num(r.ci.throughput_tps),
      num(r.result.latency_ms_mean),
      num(r.ci.latency_ms_mean),
      num(r.result.latency_ms_p50),
      num(r.ci.latency_ms_p50),
      num(r.result.latency_ms_p99),
      num(r.ci.latency_ms_p99),
      num(r.result.cgr_per_view),
      num(r.ci.cgr_per_view),
      num(r.result.cgr_per_block),
      num(r.ci.cgr_per_block),
      num(r.result.block_interval),
      num(r.ci.block_interval),
      num(r.result.measured_s),
      std::to_string(r.result.latency_samples),
      std::to_string(r.result.views),
      std::to_string(r.result.blocks_committed),
      std::to_string(r.result.blocks_received),
      std::to_string(r.result.blocks_forked),
      std::to_string(r.result.timeouts),
      std::to_string(r.result.rejected),
      std::to_string(r.result.net_bytes),
      std::to_string(r.result.sync_requests),
      std::to_string(r.result.sync_blocks),
      std::to_string(r.result.sync_bytes),
      std::to_string(r.result.certs_verified),
      std::to_string(r.result.certs_rejected),
      num(r.result.recovery_ms),
      std::to_string(r.result.disk_bytes_written),
      num(r.result.write_amplification),
      std::to_string(r.result.store_reads),
      std::to_string(r.result.snapshot_bytes),
      std::to_string(r.result.snapshot_chunks),
      std::to_string(r.result.snapshots_installed),
      std::to_string(r.result.snapshots_rejected),
      std::to_string(r.result.restarts),
      num(r.result.offered_tps),
      num(r.result.hist_p50_ms),
      num(r.result.hist_p99_ms),
      num(r.result.hist_p999_ms),
      std::to_string(r.result.mem_admitted),
      std::to_string(r.result.mem_rejected),
      csv_escape(r.result.latency_hist),
      csv_escape(r.result.commit_share),
      num(r.result.chain_quality),
      num(r.result.commit_share_max),
      num(r.result.proposer_gini),
      r.result.consistent ? "true" : "false",
      std::to_string(r.result.safety_violations)};
  std::string out;
  for (const std::string& c : cells) {
    if (!out.empty()) out += ',';
    out += c;
  }
  return out;
}

util::Json to_json(const Record& r) {
  util::Json::Object o;
  o.emplace("bench", util::Json(r.bench));
  o.emplace("artifact", util::Json(r.artifact));
  o.emplace("series", util::Json(r.series));
  o.emplace("kind", util::Json(r.kind));
  o.emplace("spec_index", util::Json(static_cast<std::int64_t>(r.spec_index)));
  o.emplace("rep", util::Json(static_cast<std::int64_t>(r.rep)));
  o.emplace("reps", util::Json(static_cast<std::int64_t>(r.reps)));
  o.emplace("protocol", util::Json(r.prov.protocol));
  o.emplace("n_replicas",
            util::Json(static_cast<std::int64_t>(r.prov.n_replicas)));
  o.emplace("byz_no", util::Json(static_cast<std::int64_t>(r.prov.byz_no)));
  o.emplace("strategy", util::Json(r.prov.strategy));
  o.emplace("election", util::Json(r.prov.election));
  o.emplace("bsize", util::Json(static_cast<std::int64_t>(r.prov.bsize)));
  o.emplace("psize", util::Json(static_cast<std::int64_t>(r.prov.psize)));
  o.emplace("memsize", util::Json(static_cast<std::int64_t>(r.prov.memsize)));
  o.emplace("delay_ms", util::Json(r.prov.delay_ms));
  o.emplace("delay_jitter_ms", util::Json(r.prov.delay_jitter_ms));
  o.emplace("timeout_ms", util::Json(r.prov.timeout_ms));
  o.emplace("link_model", util::Json(r.prov.link_model));
  o.emplace("link_shape", util::Json(r.prov.link_shape));
  o.emplace("link_loss", util::Json(r.prov.link_loss));
  o.emplace("topology", util::Json(r.prov.topology));
  o.emplace("churn", util::Json(r.prov.churn));
  o.emplace("ge_p", util::Json(r.prov.ge_p));
  o.emplace("ge_r", util::Json(r.prov.ge_r));
  o.emplace("ge_loss_good", util::Json(r.prov.ge_loss_good));
  o.emplace("ge_loss_bad", util::Json(r.prov.ge_loss_bad));
  o.emplace("sync_batch",
            util::Json(static_cast<std::int64_t>(r.prov.sync_batch)));
  o.emplace("sync_timeout_ms", util::Json(r.prov.sync_timeout_ms));
  o.emplace("sync_retries",
            util::Json(static_cast<std::int64_t>(r.prov.sync_retries)));
  o.emplace("sync_pipeline",
            util::Json(static_cast<std::int64_t>(r.prov.sync_pipeline)));
  o.emplace("snapshot_gap",
            util::Json(static_cast<std::int64_t>(r.prov.snapshot_gap)));
  o.emplace("store", util::Json(r.prov.store));
  o.emplace("retention",
            util::Json(static_cast<std::int64_t>(r.prov.retention)));
  o.emplace("verify_strategy", util::Json(r.prov.verify_strategy));
  o.emplace("cpu_workers",
            util::Json(static_cast<std::int64_t>(r.prov.cpu_workers)));
  o.emplace("cpu_verify_per_sig_us",
            util::Json(r.prov.cpu_verify_per_sig_us));
  o.emplace("cpu_verify_batch_base_us",
            util::Json(r.prov.cpu_verify_batch_base_us));
  o.emplace("cpu_verify_batch_per_sig_us",
            util::Json(r.prov.cpu_verify_batch_per_sig_us));
  o.emplace("mode", util::Json(r.prov.mode));
  o.emplace("concurrency",
            util::Json(static_cast<std::int64_t>(r.prov.concurrency)));
  o.emplace("arrival_rate_tps", util::Json(r.prov.arrival_rate_tps));
  o.emplace("arrival", util::Json(r.prov.arrival));
  o.emplace("client_population", util::Json(static_cast<std::int64_t>(
                                     r.prov.client_population)));
  o.emplace("admission", util::Json(r.prov.admission));
  // Seeds are full-width 64-bit identifiers; util::Json numbers are doubles
  // (exact only up to 2^53), so serialize them as decimal strings to keep
  // the CSV/JSON emitters and the shard merge lossless for any seed.
  o.emplace("seed", util::Json(std::to_string(r.prov.seed)));
  o.emplace("base_seed", util::Json(std::to_string(r.prov.base_seed)));
  o.emplace("warmup_s", util::Json(r.prov.warmup_s));
  o.emplace("measure_s", util::Json(r.prov.measure_s));
  o.emplace("offered", util::Json(r.prov.offered));
  o.emplace("throughput_tps", util::Json(r.result.throughput_tps));
  o.emplace("throughput_tps_ci95", util::Json(r.ci.throughput_tps));
  o.emplace("latency_ms_mean", util::Json(r.result.latency_ms_mean));
  o.emplace("latency_ms_mean_ci95", util::Json(r.ci.latency_ms_mean));
  o.emplace("latency_ms_p50", util::Json(r.result.latency_ms_p50));
  o.emplace("latency_ms_p50_ci95", util::Json(r.ci.latency_ms_p50));
  o.emplace("latency_ms_p99", util::Json(r.result.latency_ms_p99));
  o.emplace("latency_ms_p99_ci95", util::Json(r.ci.latency_ms_p99));
  o.emplace("cgr_per_view", util::Json(r.result.cgr_per_view));
  o.emplace("cgr_per_view_ci95", util::Json(r.ci.cgr_per_view));
  o.emplace("cgr_per_block", util::Json(r.result.cgr_per_block));
  o.emplace("cgr_per_block_ci95", util::Json(r.ci.cgr_per_block));
  o.emplace("block_interval", util::Json(r.result.block_interval));
  o.emplace("block_interval_ci95", util::Json(r.ci.block_interval));
  o.emplace("measured_s", util::Json(r.result.measured_s));
  o.emplace("latency_samples",
            util::Json(static_cast<std::int64_t>(r.result.latency_samples)));
  o.emplace("views", util::Json(static_cast<std::int64_t>(r.result.views)));
  o.emplace("blocks_committed", util::Json(static_cast<std::int64_t>(
                                    r.result.blocks_committed)));
  o.emplace("blocks_received", util::Json(static_cast<std::int64_t>(
                                   r.result.blocks_received)));
  o.emplace("blocks_forked",
            util::Json(static_cast<std::int64_t>(r.result.blocks_forked)));
  o.emplace("timeouts",
            util::Json(static_cast<std::int64_t>(r.result.timeouts)));
  o.emplace("rejected",
            util::Json(static_cast<std::int64_t>(r.result.rejected)));
  o.emplace("net_bytes",
            util::Json(static_cast<std::int64_t>(r.result.net_bytes)));
  o.emplace("sync_requests",
            util::Json(static_cast<std::int64_t>(r.result.sync_requests)));
  o.emplace("sync_blocks",
            util::Json(static_cast<std::int64_t>(r.result.sync_blocks)));
  o.emplace("sync_bytes",
            util::Json(static_cast<std::int64_t>(r.result.sync_bytes)));
  o.emplace("certs_verified",
            util::Json(static_cast<std::int64_t>(r.result.certs_verified)));
  o.emplace("certs_rejected",
            util::Json(static_cast<std::int64_t>(r.result.certs_rejected)));
  o.emplace("recovery_ms", util::Json(r.result.recovery_ms));
  o.emplace("disk_bytes_written",
            util::Json(static_cast<std::int64_t>(r.result.disk_bytes_written)));
  o.emplace("write_amplification", util::Json(r.result.write_amplification));
  o.emplace("store_reads",
            util::Json(static_cast<std::int64_t>(r.result.store_reads)));
  o.emplace("snapshot_bytes",
            util::Json(static_cast<std::int64_t>(r.result.snapshot_bytes)));
  o.emplace("snapshot_chunks",
            util::Json(static_cast<std::int64_t>(r.result.snapshot_chunks)));
  o.emplace(
      "snapshots_installed",
      util::Json(static_cast<std::int64_t>(r.result.snapshots_installed)));
  o.emplace(
      "snapshots_rejected",
      util::Json(static_cast<std::int64_t>(r.result.snapshots_rejected)));
  o.emplace("restarts",
            util::Json(static_cast<std::int64_t>(r.result.restarts)));
  o.emplace("offered_tps", util::Json(r.result.offered_tps));
  o.emplace("hist_p50_ms", util::Json(r.result.hist_p50_ms));
  o.emplace("hist_p99_ms", util::Json(r.result.hist_p99_ms));
  o.emplace("hist_p999_ms", util::Json(r.result.hist_p999_ms));
  o.emplace("mem_admitted",
            util::Json(static_cast<std::int64_t>(r.result.mem_admitted)));
  o.emplace("mem_rejected",
            util::Json(static_cast<std::int64_t>(r.result.mem_rejected)));
  o.emplace("latency_hist", util::Json(r.result.latency_hist));
  o.emplace("commit_share", util::Json(r.result.commit_share));
  o.emplace("chain_quality", util::Json(r.result.chain_quality));
  o.emplace("commit_share_max", util::Json(r.result.commit_share_max));
  o.emplace("proposer_gini", util::Json(r.result.proposer_gini));
  o.emplace("consistent", util::Json(r.result.consistent));
  o.emplace("safety_violations", util::Json(static_cast<std::int64_t>(
                                     r.result.safety_violations)));
  return util::Json(std::move(o));
}

Record record_from_json(const util::Json& j) {
  if (!j.is_object()) {
    throw std::invalid_argument("report record must be a JSON object");
  }
  Record r;
  r.bench = j.get_string("bench", "");
  r.artifact = j.get_string("artifact", "");
  r.series = j.get_string("series", "");
  r.kind = j.get_string("kind", "run");
  r.spec_index = static_cast<std::uint32_t>(j.get_int("spec_index", 0));
  r.rep = static_cast<std::uint32_t>(j.get_int("rep", 0));
  r.reps = static_cast<std::uint32_t>(j.get_int("reps", 1));
  r.prov.protocol = j.get_string("protocol", "");
  r.prov.n_replicas = static_cast<std::uint32_t>(j.get_int("n_replicas", 0));
  r.prov.byz_no = static_cast<std::uint32_t>(j.get_int("byz_no", 0));
  r.prov.strategy = j.get_string("strategy", "");
  r.prov.election = j.get_string("election", "");
  r.prov.bsize = static_cast<std::uint32_t>(j.get_int("bsize", 0));
  r.prov.psize = static_cast<std::uint32_t>(j.get_int("psize", 0));
  r.prov.memsize = static_cast<std::uint32_t>(j.get_int("memsize", 0));
  r.prov.delay_ms = j.get_number("delay_ms", 0);
  r.prov.delay_jitter_ms = j.get_number("delay_jitter_ms", 0);
  r.prov.timeout_ms = j.get_number("timeout_ms", 0);
  r.prov.link_model = j.get_string("link_model", "normal");
  r.prov.link_shape = j.get_number("link_shape", 0);
  r.prov.link_loss = j.get_number("link_loss", 0);
  r.prov.topology = j.get_string("topology", "uniform");
  r.prov.churn = j.get_string("churn", "");
  r.prov.ge_p = j.get_number("ge_p", 0);
  r.prov.ge_r = j.get_number("ge_r", 0);
  r.prov.ge_loss_good = j.get_number("ge_loss_good", 0);
  r.prov.ge_loss_bad = j.get_number("ge_loss_bad", 1.0);
  r.prov.sync_batch = static_cast<std::uint32_t>(j.get_int("sync_batch", 1));
  r.prov.sync_timeout_ms = j.get_number("sync_timeout_ms", 500);
  r.prov.sync_retries =
      static_cast<std::uint32_t>(j.get_int("sync_retries", 3));
  r.prov.sync_pipeline =
      static_cast<std::uint32_t>(j.get_int("sync_pipeline", 1));
  r.prov.snapshot_gap =
      static_cast<std::uint32_t>(j.get_int("snapshot_gap", 0));
  r.prov.store = j.get_string("store", "memory");
  r.prov.retention = static_cast<std::uint32_t>(j.get_int("retention", 0));
  r.prov.verify_strategy = j.get_string("verify_strategy", "eager");
  r.prov.cpu_workers = static_cast<std::uint32_t>(j.get_int("cpu_workers", 1));
  r.prov.cpu_verify_per_sig_us = j.get_number("cpu_verify_per_sig_us", 0);
  r.prov.cpu_verify_batch_base_us =
      j.get_number("cpu_verify_batch_base_us", 100);
  r.prov.cpu_verify_batch_per_sig_us =
      j.get_number("cpu_verify_batch_per_sig_us", 2);
  r.prov.mode = j.get_string("mode", "closed");
  r.prov.concurrency = static_cast<std::uint32_t>(j.get_int("concurrency", 0));
  r.prov.arrival_rate_tps = j.get_number("arrival_rate_tps", 0);
  r.prov.arrival = j.get_string("arrival", "poisson");
  r.prov.client_population =
      static_cast<std::uint64_t>(j.get_int("client_population", 0));
  r.prov.admission = j.get_string("admission", "drop");
  r.prov.seed = get_u64(j, "seed");
  r.prov.base_seed = get_u64(j, "base_seed");
  r.prov.warmup_s = j.get_number("warmup_s", 0);
  r.prov.measure_s = j.get_number("measure_s", 0);
  r.prov.offered = j.get_number("offered", 0);
  r.result.throughput_tps = j.get_number("throughput_tps", 0);
  r.ci.throughput_tps = j.get_number("throughput_tps_ci95", 0);
  r.result.latency_ms_mean = j.get_number("latency_ms_mean", 0);
  r.ci.latency_ms_mean = j.get_number("latency_ms_mean_ci95", 0);
  r.result.latency_ms_p50 = j.get_number("latency_ms_p50", 0);
  r.ci.latency_ms_p50 = j.get_number("latency_ms_p50_ci95", 0);
  r.result.latency_ms_p99 = j.get_number("latency_ms_p99", 0);
  r.ci.latency_ms_p99 = j.get_number("latency_ms_p99_ci95", 0);
  r.result.cgr_per_view = j.get_number("cgr_per_view", 0);
  r.ci.cgr_per_view = j.get_number("cgr_per_view_ci95", 0);
  r.result.cgr_per_block = j.get_number("cgr_per_block", 0);
  r.ci.cgr_per_block = j.get_number("cgr_per_block_ci95", 0);
  r.result.block_interval = j.get_number("block_interval", 0);
  r.ci.block_interval = j.get_number("block_interval_ci95", 0);
  r.result.measured_s = j.get_number("measured_s", 0);
  r.result.latency_samples =
      static_cast<std::uint64_t>(j.get_int("latency_samples", 0));
  r.result.views = static_cast<std::uint64_t>(j.get_int("views", 0));
  r.result.blocks_committed =
      static_cast<std::uint64_t>(j.get_int("blocks_committed", 0));
  r.result.blocks_received =
      static_cast<std::uint64_t>(j.get_int("blocks_received", 0));
  r.result.blocks_forked =
      static_cast<std::uint64_t>(j.get_int("blocks_forked", 0));
  r.result.timeouts = static_cast<std::uint64_t>(j.get_int("timeouts", 0));
  r.result.rejected = static_cast<std::uint64_t>(j.get_int("rejected", 0));
  r.result.net_bytes = static_cast<std::uint64_t>(j.get_int("net_bytes", 0));
  r.result.sync_requests =
      static_cast<std::uint64_t>(j.get_int("sync_requests", 0));
  r.result.sync_blocks =
      static_cast<std::uint64_t>(j.get_int("sync_blocks", 0));
  r.result.sync_bytes =
      static_cast<std::uint64_t>(j.get_int("sync_bytes", 0));
  r.result.certs_verified =
      static_cast<std::uint64_t>(j.get_int("certs_verified", 0));
  r.result.certs_rejected =
      static_cast<std::uint64_t>(j.get_int("certs_rejected", 0));
  r.result.recovery_ms = j.get_number("recovery_ms", 0);
  r.result.disk_bytes_written =
      static_cast<std::uint64_t>(j.get_int("disk_bytes_written", 0));
  r.result.write_amplification = j.get_number("write_amplification", 0);
  r.result.store_reads =
      static_cast<std::uint64_t>(j.get_int("store_reads", 0));
  r.result.snapshot_bytes =
      static_cast<std::uint64_t>(j.get_int("snapshot_bytes", 0));
  r.result.snapshot_chunks =
      static_cast<std::uint64_t>(j.get_int("snapshot_chunks", 0));
  r.result.snapshots_installed =
      static_cast<std::uint64_t>(j.get_int("snapshots_installed", 0));
  r.result.snapshots_rejected =
      static_cast<std::uint64_t>(j.get_int("snapshots_rejected", 0));
  r.result.restarts = static_cast<std::uint64_t>(j.get_int("restarts", 0));
  r.result.offered_tps = j.get_number("offered_tps", 0);
  r.result.hist_p50_ms = j.get_number("hist_p50_ms", 0);
  r.result.hist_p99_ms = j.get_number("hist_p99_ms", 0);
  r.result.hist_p999_ms = j.get_number("hist_p999_ms", 0);
  r.result.mem_admitted =
      static_cast<std::uint64_t>(j.get_int("mem_admitted", 0));
  r.result.mem_rejected =
      static_cast<std::uint64_t>(j.get_int("mem_rejected", 0));
  r.result.latency_hist = j.get_string("latency_hist", "");
  r.result.commit_share = j.get_string("commit_share", "");
  r.result.chain_quality = j.get_number("chain_quality", 0);
  r.result.commit_share_max = j.get_number("commit_share_max", 0);
  r.result.proposer_gini = j.get_number("proposer_gini", 0);
  r.result.consistent = j.get_bool("consistent", true);
  r.result.safety_violations =
      static_cast<std::uint64_t>(j.get_int("safety_violations", 0));
  return r;
}

std::vector<Record> records_from_json_text(const std::string& text) {
  const util::Json doc = util::Json::parse(text);
  const util::Json* records = doc.find("records");
  if (records == nullptr || !records->is_array()) {
    throw std::invalid_argument("artifact document has no records array");
  }
  std::vector<Record> out;
  out.reserve(records->as_array().size());
  for (const util::Json& j : records->as_array()) {
    out.push_back(record_from_json(j));
  }
  return out;
}

std::string CsvSink::serialize() const {
  std::string out = csv_header();
  out += '\n';
  for (const std::string& row : rows_) {
    out += row;
    out += '\n';
  }
  return out;
}

std::string JsonSink::serialize() const {
  util::Json::Object doc;
  doc.emplace("records", util::Json(records_));
  doc.emplace("schema", util::Json(kRecordSchema));
  return util::Json(std::move(doc)).dump() + "\n";
}

// --- artifact directory ----------------------------------------------------

ArtifactWriter::ArtifactWriter(std::string out_dir, std::string bench,
                               std::vector<std::string> formats, Shard shard)
    : out_dir_(std::move(out_dir)),
      bench_(std::move(bench)),
      formats_(std::move(formats)),
      shard_(shard) {}

void ArtifactWriter::add(const std::string& artifact, const Record& r) {
  if (!enabled()) return;
  records_[artifact].push_back(r);
}

void ArtifactWriter::add_table(const std::string& artifact,
                               std::vector<std::string> headers,
                               std::vector<std::vector<std::string>> rows) {
  if (!enabled()) return;
  tables_[artifact] = Table{std::move(headers), std::move(rows)};
}

namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot write artifact file: " + path.string());
  }
  out << body;
}

std::string table_csv(const std::vector<std::string>& headers,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(headers[i]);
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  }
  return out;
}

std::string table_json(const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows) {
  util::Json::Array hs;
  for (const std::string& h : headers) hs.emplace_back(h);
  util::Json::Array rs;
  for (const auto& row : rows) {
    util::Json::Array cells;
    for (const std::string& c : row) cells.emplace_back(c);
    rs.emplace_back(std::move(cells));
  }
  util::Json::Object doc;
  doc.emplace("headers", util::Json(std::move(hs)));
  doc.emplace("rows", util::Json(std::move(rs)));
  doc.emplace("schema", util::Json(kTableSchema));
  return util::Json(std::move(doc)).dump() + "\n";
}

}  // namespace

std::vector<ArtifactFile> ArtifactWriter::finish() {
  std::vector<ArtifactFile> written;
  if (!enabled()) return written;
  namespace fs = std::filesystem;
  const fs::path dir(out_dir_);
  fs::create_directories(dir);

  const std::string tag = shard_.label();
  const auto filename = [&](const std::string& artifact,
                            const std::string& format) {
    std::string name = artifact;
    if (!tag.empty()) name += "." + tag;
    return name + "." + format;
  };

  util::Json::Array manifest_artifacts;
  const auto emit = [&](const std::string& artifact, std::size_t n_records,
                        const auto& body_of) {
    util::Json::Array files;
    for (const std::string& format : formats_) {
      const std::string name = filename(artifact, format);
      write_file(dir / name, body_of(format));
      written.push_back(ArtifactFile{artifact, format, name, n_records});
      util::Json::Object f;
      f.emplace("format", util::Json(format));
      f.emplace("path", util::Json(name));
      f.emplace("records", util::Json(static_cast<std::int64_t>(n_records)));
      files.emplace_back(std::move(f));
    }
    util::Json::Object a;
    a.emplace("files", util::Json(std::move(files)));
    a.emplace("name", util::Json(artifact));
    manifest_artifacts.emplace_back(std::move(a));
  };

  // std::map iteration = deterministic alphabetical artifact order, the
  // same order merge_records groups by — keeps merged output byte-identical.
  for (const auto& [artifact, records] : records_) {
    emit(artifact, records.size(), [&](const std::string& format) {
      if (format == "csv") {
        CsvSink sink;
        for (const Record& r : records) sink.add(r);
        return sink.serialize();
      }
      JsonSink sink;
      for (const Record& r : records) sink.add(r);
      return sink.serialize();
    });
  }
  for (const auto& [artifact, table] : tables_) {
    emit(artifact, table.rows.size(), [&](const std::string& format) {
      return format == "csv" ? table_csv(table.headers, table.rows)
                             : table_json(table.headers, table.rows);
    });
  }

  util::Json::Object manifest;
  manifest.emplace("artifacts", util::Json(std::move(manifest_artifacts)));
  manifest.emplace("bench", util::Json(bench_));
  {
    util::Json::Array fmts;
    for (const std::string& f : formats_) fmts.emplace_back(f);
    manifest.emplace("formats", util::Json(std::move(fmts)));
  }
  manifest.emplace("schema", util::Json(kManifestSchema));
  {
    util::Json::Object s;
    s.emplace("count", util::Json(static_cast<std::int64_t>(shard_.count)));
    s.emplace("index", util::Json(static_cast<std::int64_t>(shard_.index)));
    manifest.emplace("shard", util::Json(std::move(s)));
  }
  const std::string manifest_name =
      tag.empty() ? "manifest.json" : "manifest." + tag + ".json";
  write_file(dir / manifest_name,
             util::Json(std::move(manifest)).dump() + "\n");
  written.push_back(ArtifactFile{"manifest", "json", manifest_name, 0});
  return written;
}

// --- shard merge -----------------------------------------------------------

std::vector<Record> merge_records(std::vector<Record> rows) {
  // Aggregates are regenerated from the run rows; run and timeline rows
  // are the durable per-shard data.
  std::erase_if(rows, [](const Record& r) {
    return r.kind != "run" && r.kind != "timeline";
  });
  std::sort(rows.begin(), rows.end(), [](const Record& a, const Record& b) {
    return std::tie(a.bench, a.artifact, a.spec_index, a.kind, a.rep) <
           std::tie(b.bench, b.artifact, b.spec_index, b.kind, b.rep);
  });

  std::vector<Record> out;
  std::size_t i = 0;
  while (i < rows.size()) {
    // One (bench, artifact, spec_index, kind) group = one spec's rep set
    // (kind "run") or one spec's timeline buckets (kind "timeline").
    std::size_t end = i;
    while (end < rows.size() && rows[end].bench == rows[i].bench &&
           rows[end].artifact == rows[i].artifact &&
           rows[end].spec_index == rows[i].spec_index &&
           rows[end].kind == rows[i].kind) {
      ++end;
    }
    if (rows[i].kind == "timeline") {
      // A spec's timeline comes wholly from the shard that ran it; a
      // duplicate bucket means the same shard file was merged twice.
      for (std::size_t j = i + 1; j < end; ++j) {
        if (rows[j].rep == rows[j - 1].rep) {
          throw std::invalid_argument(
              "duplicate timeline bucket " + std::to_string(rows[j].rep) +
              " for spec " + std::to_string(rows[j].spec_index) + " of " +
              rows[j].artifact);
        }
      }
      for (std::size_t j = i; j < end; ++j) out.push_back(std::move(rows[j]));
      i = end;
      continue;
    }
    std::vector<RunResult> results;
    for (std::size_t j = i; j < end; ++j) {
      const std::uint32_t expected_rep = static_cast<std::uint32_t>(j - i);
      if (rows[j].rep != expected_rep) {
        throw std::invalid_argument(
            rows[j].rep < expected_rep
                ? "duplicate rep " + std::to_string(rows[j].rep) +
                      " for spec " + std::to_string(rows[j].spec_index) +
                      " of " + rows[j].artifact
                : "missing rep " + std::to_string(expected_rep) +
                      " for spec " + std::to_string(rows[j].spec_index) +
                      " of " + rows[j].artifact);
      }
      results.push_back(rows[j].result);
    }
    if (results.size() != rows[i].reps) {
      throw std::invalid_argument(
          "incomplete rep set for spec " + std::to_string(rows[i].spec_index) +
          " of " + rows[i].artifact + ": have " +
          std::to_string(results.size()) + ", want " +
          std::to_string(rows[i].reps));
    }
    Provenance base = rows[i].prov;
    base.seed = base.base_seed;
    Record agg = aggregate_from(rows[i].bench, rows[i].artifact,
                                rows[i].series, rows[i].spec_index,
                                std::move(base), results);
    for (std::size_t j = i; j < end; ++j) out.push_back(std::move(rows[j]));
    out.push_back(std::move(agg));
    i = end;
  }
  return out;
}

}  // namespace bamboo::harness::report
