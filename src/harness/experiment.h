#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "client/workload.h"
#include "core/churn.h"
#include "core/config.h"
#include "harness/cluster.h"

namespace bamboo::harness {

/// Everything one benchmark run produces — the paper's four metrics
/// (throughput, latency, chain growth rate, block interval; §IV-B) plus
/// engine health numbers.
struct RunResult {
  // paper metrics
  double throughput_tps = 0;  ///< committed tx/s confirmed at clients
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  /// Committed blocks per elapsed view (Eq. 1 read literally).
  double cgr_per_view = 0;
  /// Committed blocks per block appended to the chain (the reading that
  /// matches the Fig. 13/14 narratives; DESIGN.md §1).
  double cgr_per_block = 0;
  /// Mean views from a block's proposal to its commitment (Eq. 2).
  double block_interval = 0;

  // run accounting
  double measured_s = 0;
  std::uint64_t latency_samples = 0;
  std::uint64_t views = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_forked = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
  /// Network bytes sent cluster-wide inside the measurement window.
  std::uint64_t net_bytes = 0;

  // recovery & state sync (sync::Syncer), summed over every replica
  std::uint64_t sync_requests = 0;  ///< ChainRequestMsg sent (incl. retries)
  std::uint64_t sync_blocks = 0;    ///< fetched blocks accepted into forests
  std::uint64_t sync_bytes = 0;     ///< wire bytes of accepted responses
  /// Mean heal-to-caught-up latency (ms) across the run's churn recovery
  /// events (partition heal / link restore / loss-burst end); events still
  /// unrecovered at run end count up to the end. 0 = no recovery event.
  double recovery_ms = 0;

  // certificate-verification pipeline (quorum/cert_verifier.h), summed
  // over every replica
  std::uint64_t certs_verified = 0;  ///< received QCs/TCs that checked out
  std::uint64_t certs_rejected = 0;  ///< forged/malformed certificates dropped

  // durable ledger (storage/block_store.h) + snapshot state transfer,
  // summed over every replica's store / syncer
  /// Physical store bytes written (record framing included) in the window.
  std::uint64_t disk_bytes_written = 0;
  /// Physical bytes / logical (wire-size) bytes appended; exactly 1.0 for
  /// the in-memory store (it accounts logical as physical). The file log
  /// usually lands BELOW 1: its records store block metadata compactly
  /// while the wire model also charges the simulated (never materialized)
  /// transaction payload bytes; record framing pushes it back up only for
  /// near-empty blocks. 0 when nothing was written in the window.
  double write_amplification = 0;
  std::uint64_t store_reads = 0;  ///< store lookups (reads + replays)
  std::uint64_t snapshot_bytes = 0;   ///< snapshot chunk wire bytes accepted
  std::uint64_t snapshot_chunks = 0;  ///< snapshot chunks accepted
  std::uint64_t snapshots_installed = 0;
  std::uint64_t snapshots_rejected = 0;  ///< tampered/stale snapshots refused
  std::uint64_t restarts = 0;  ///< crash-restart recoveries performed

  // open-loop / overload accounting
  /// Client-issued tx/s inside the measurement window — the offered load
  /// actually generated (vs throughput_tps, the goodput). Their gap is the
  /// overload regime.
  double offered_tps = 0;
  /// Exact quantiles from the log-scale latency histogram
  /// (util/histogram.h). Unlike the sample-sorted latency_ms_p50/p99,
  /// these merge across reps and shards bit-identically, and p999 is
  /// only available here.
  double hist_p50_ms = 0;
  double hist_p99_ms = 0;
  double hist_p999_ms = 0;
  /// Mempool admissions/rejections inside the window, summed cluster-wide
  /// (the backpressure ledger; rejections include duplicates and
  /// capacity/priority-reserve refusals).
  std::uint64_t mem_admitted = 0;
  std::uint64_t mem_rejected = 0;
  /// The window's latency histogram, sparse-encoded ("index:count;...") —
  /// what aggregate rows and shard merges rebuild quantiles from.
  std::string latency_hist;

  // leadership democracy (multi-leader / chain-quality accounting)
  /// Committed blocks per proposer inside the measurement window at the
  /// observer, sparse-encoded "id:count;..." with ids ascending — what
  /// aggregate rows and shard merges rebuild the three scalars below
  /// from (count addition is associative, so the merged scalars are
  /// bit-identical to the unsharded fold). Empty = nothing committed.
  std::string commit_share;
  /// Chain quality: the fraction of committed blocks proposed by honest
  /// replicas (the Byzantine set is the top byz_no ids, like
  /// core::Config::is_byzantine). 0 when nothing committed.
  double chain_quality = 0;
  /// The largest single replica's share of committed blocks.
  double commit_share_max = 0;
  /// Gini coefficient of per-replica committed-block counts over ALL
  /// n_replicas (replicas that proposed nothing count as zeros).
  /// 0 = perfectly even proposer representation; -> 1 = one dictator.
  double proposer_gini = 0;

  // invariants
  bool consistent = true;
  std::uint64_t safety_violations = 0;

  /// Field-for-field equality — the determinism tests compare entire
  /// results bit-for-bit across repeated and multi-threaded executions.
  bool operator==(const RunResult&) const = default;
};

struct RunOptions {
  double warmup_s = 0.5;
  double measure_s = 1.5;
};

/// Sparse codec for RunResult::commit_share ("id:count;..."; ids
/// ascending, zero counts elided). decode() accepts the empty string
/// (no commits) and throws std::invalid_argument on malformed text.
[[nodiscard]] std::string encode_commit_share(
    const std::map<types::NodeId, std::uint64_t>& counts);
[[nodiscard]] std::map<types::NodeId, std::uint64_t> decode_commit_share(
    const std::string& text);

/// The three leadership-democracy scalars derived from a per-proposer
/// commit-count map — shared by finalize() and the report aggregator so
/// pooled-count recomputation matches the per-run path exactly.
struct DemocracyScalars {
  double chain_quality = 0;
  double commit_share_max = 0;
  double proposer_gini = 0;
};
[[nodiscard]] DemocracyScalars democracy_scalars(
    const std::map<types::NodeId, std::uint64_t>& counts,
    std::uint32_t n_replicas, std::uint32_t byz_no);

/// How the Fig. 15 fault is injected at crash_at_s.
enum class FaultKind {
  kSilence,  ///< the paper's "silence attack (crash)": stops proposing
  kCrash,    ///< hard fail-stop
};

/// The mid-run network-churn schedule: an ordered list of typed, timed
/// events (link degradation/restoration, partitions, loss bursts, global
/// fluctuation windows, crash/silence faults — see core/churn.h) executed
/// by the simulator at their scheduled times. This generalizes the old
/// two-event plan (one fluctuation window + one crash, Fig. 15) into a
/// scenario language; the legacy shape is now just a two-event schedule.
///
/// Empty by default. Programmatic schedules go here; DSL strings ride in
/// core::Config::churn (so they reach provenance) and are appended to
/// this schedule at execute() time.
struct FaultPlan {
  core::ChurnSchedule schedule;

  [[nodiscard]] bool empty() const { return schedule.empty(); }

  bool operator==(const FaultPlan&) const = default;
};

/// The effective schedule execute() installs for a spec: the programmatic
/// FaultPlan events followed by the parsed core::Config::churn DSL events
/// (throws std::invalid_argument on an unparseable DSL, like
/// Config::validate()).
[[nodiscard]] core::ChurnSchedule effective_churn(
    const FaultPlan& faults, const core::Config& cfg);

/// Heal-to-caught-up measurement, armed by install_churn at every
/// "healing" churn moment: a partition heal, a link restore, or the end
/// of a loss-burst window. At that instant the probe samples the max
/// committed height across honest live replicas; replicas below it are
/// lagging, and the event's recovery latency is the time from the heal
/// until every laggard has committed up to that height (laggards that
/// crash are dropped). Polling is pure observation at a fixed 5 ms
/// cadence — it draws no randomness and sends no messages, so arming the
/// probe never perturbs the run. Heals with no laggards record nothing.
struct RecoveryProbe {
  struct Event {
    double heal_at_s = 0;
    double recovered_at_s = -1;  ///< -1 = still lagging at run end
    /// Every laggard crashed before catching up: the event has nothing
    /// left to measure and is excluded from the mean.
    bool abandoned = false;
  };
  std::vector<Event> events;

  /// Mean heal→recovered latency in ms over measurable events;
  /// unfinished events count to end_s, abandoned ones are skipped.
  [[nodiscard]] double mean_ms(double end_s) const;
};

/// Schedule every churn event of `schedule` on the cluster's simulator
/// (call before Cluster::start()). Endpoint/replica ids are range-checked
/// against the cluster's configuration here — std::invalid_argument names
/// the offending event. A non-null `probe` must outlive the simulation;
/// it accumulates one RecoveryProbe::Event per healing moment that found
/// lagging replicas. Exposed for tests; execute() calls it.
void install_churn(Cluster& cluster, const core::ChurnSchedule& schedule,
                   RecoveryProbe* probe = nullptr);

/// The complete, self-contained description of ONE simulation run: protocol
/// + cluster configuration, offered workload, measurement windows, seed
/// (inside cfg), and the fault/fluctuation plan. A RunSpec is a pure value —
/// executing it has no side effects on the spec or any shared state — which
/// is what lets the ParallelRunner fan specs out across threads while
/// staying bit-identical to a sequential loop.
struct RunSpec {
  core::Config cfg;
  client::WorkloadConfig workload;
  RunOptions opts;
  FaultPlan faults;
  /// When true the metrics cover the whole run from t=0 (no warm-up
  /// exclusion; counters baseline at zero) — timeline semantics.
  bool measure_whole_run = false;
  /// >0: capture committed-tx throughput per bucket (Fig. 15 timelines).
  double timeline_bucket_s = 0;
  /// Label passthrough: the offered-load value of this sweep point
  /// (concurrency or λ); purely descriptive.
  double offered = 0;

  /// Copy of this spec with a different seed (multi-seed repetition).
  [[nodiscard]] RunSpec with_seed(std::uint64_t seed) const {
    RunSpec s = *this;
    s.cfg.seed = seed;
    return s;
  }
};

/// Execute one spec: build cluster + workload, run warm-up then the
/// measurement window, and compute all metrics (observer = replica 0).
/// Pure in the functional sense: same spec -> same RunResult, independent
/// of what else runs on other threads.
RunResult execute(const RunSpec& spec);

/// execute() plus the optional throughput timeline.
struct RunOutput {
  RunResult result;
  std::vector<double> bucket_start_s;  ///< empty unless timeline requested
  std::vector<double> tx_per_s;
  /// Simulator events executed over the whole run (warm-up included).
  /// Engine-speed accounting for the perf harness (bench_perf): events/sec
  /// = events_executed / wall time. Not part of RunResult, so result
  /// equality and the report schema are untouched.
  std::uint64_t events_executed = 0;
};
RunOutput execute_full(const RunSpec& spec);

/// Legacy single-run entry point; now a thin wrapper over execute().
RunResult run_experiment(const core::Config& cfg,
                         const client::WorkloadConfig& wl,
                         const RunOptions& opts = {});

/// One point of a latency/throughput curve.
struct SweepPoint {
  double offered;  ///< concurrency (closed loop) or λ in tx/s (open loop)
  RunResult result;
};

/// Build the specs for a closed-loop concurrency ladder (one spec per
/// level) — feed these to execute() or a ParallelRunner.
std::vector<RunSpec> closed_loop_specs(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies,
    const RunOptions& opts = {});

/// Build the specs for an open-loop λ ladder.
std::vector<RunSpec> open_loop_specs(const core::Config& cfg,
                                     const client::WorkloadConfig& base_wl,
                                     const std::vector<double>& rates_tps,
                                     const RunOptions& opts = {});

/// Pair spec labels with their results (specs.size() == results.size()).
std::vector<SweepPoint> to_sweep_points(const std::vector<RunSpec>& specs,
                                        std::vector<RunResult> results);

/// The paper's saturation methodology: raise closed-loop concurrency until
/// throughput stops improving; each level is an independent run.
std::vector<SweepPoint> sweep_closed_loop(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies,
    const RunOptions& opts = {});

/// Open-loop λ sweep (model validation, Table II / Fig. 8).
std::vector<SweepPoint> sweep_open_loop(const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts = {});

/// Build the spec for a Fig. 15 responsiveness timeline run. The
/// fluctuation window and fault are expressed as churn-DSL events in the
/// returned spec's cfg.churn (so they reach provenance); a negative
/// fluct_start_s or non-positive crash_at_s omits the respective event.
/// Throws std::invalid_argument on a half-specified window
/// (fluct_start_s >= 0 with fluct_end_s < fluct_start_s) — the old
/// FaultPlan silently ignored it.
RunSpec timeline_spec(const core::Config& cfg,
                      const client::WorkloadConfig& wl, double horizon_s,
                      double bucket_s, double fluct_start_s,
                      double fluct_end_s, sim::Duration fluct_lo,
                      sim::Duration fluct_hi, double crash_at_s,
                      types::NodeId crash_replica,
                      FaultKind fault = FaultKind::kSilence);

/// The Fig. 15 responsiveness timeline: run for `horizon_s`, injecting
/// network fluctuation during [fluct_start_s, fluct_end_s] (extra one-way
/// delay uniform in [fluct_lo, fluct_hi]) and faulting `crash_replica` at
/// crash_at_s (negative disables). Returns committed-transaction rate per
/// `bucket_s` bucket.
struct TimelineResult {
  std::vector<double> bucket_start_s;
  std::vector<double> tx_per_s;
  RunResult summary;  ///< whole-run totals (latency window = whole run)
};
TimelineResult run_responsiveness_timeline(
    const core::Config& cfg, const client::WorkloadConfig& wl,
    double horizon_s, double bucket_s, double fluct_start_s,
    double fluct_end_s, sim::Duration fluct_lo, sim::Duration fluct_hi,
    double crash_at_s, types::NodeId crash_replica,
    FaultKind fault = FaultKind::kSilence);

}  // namespace bamboo::harness
