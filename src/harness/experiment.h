#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "client/workload.h"
#include "core/config.h"
#include "harness/cluster.h"

namespace bamboo::harness {

/// Everything one benchmark run produces — the paper's four metrics
/// (throughput, latency, chain growth rate, block interval; §IV-B) plus
/// engine health numbers.
struct RunResult {
  // paper metrics
  double throughput_tps = 0;  ///< committed tx/s confirmed at clients
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  /// Committed blocks per elapsed view (Eq. 1 read literally).
  double cgr_per_view = 0;
  /// Committed blocks per block appended to the chain (the reading that
  /// matches the Fig. 13/14 narratives; DESIGN.md §1).
  double cgr_per_block = 0;
  /// Mean views from a block's proposal to its commitment (Eq. 2).
  double block_interval = 0;

  // run accounting
  double measured_s = 0;
  std::uint64_t latency_samples = 0;
  std::uint64_t views = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_forked = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;

  // invariants
  bool consistent = true;
  std::uint64_t safety_violations = 0;
};

struct RunOptions {
  double warmup_s = 0.5;
  double measure_s = 1.5;
};

/// Build a cluster + workload from `cfg`/`wl`, run warm-up then the
/// measurement window, and compute all metrics (observer = replica 0).
RunResult run_experiment(const core::Config& cfg,
                         const client::WorkloadConfig& wl,
                         const RunOptions& opts = {});

/// One point of a latency/throughput curve.
struct SweepPoint {
  double offered;  ///< concurrency (closed loop) or λ in tx/s (open loop)
  RunResult result;
};

/// The paper's saturation methodology: raise closed-loop concurrency until
/// throughput stops improving; each level is an independent run.
std::vector<SweepPoint> sweep_closed_loop(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies,
    const RunOptions& opts = {});

/// Open-loop λ sweep (model validation, Table II / Fig. 8).
std::vector<SweepPoint> sweep_open_loop(const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts = {});

/// How the Fig. 15 fault is injected at crash_at_s.
enum class FaultKind {
  kSilence,  ///< the paper's "silence attack (crash)": stops proposing
  kCrash,    ///< hard fail-stop
};

/// The Fig. 15 responsiveness timeline: run for `horizon_s`, injecting
/// network fluctuation during [fluct_start_s, fluct_end_s] (extra one-way
/// delay uniform in [fluct_lo, fluct_hi]) and faulting `crash_replica` at
/// crash_at_s (negative disables). Returns committed-transaction rate per
/// `bucket_s` bucket.
struct TimelineResult {
  std::vector<double> bucket_start_s;
  std::vector<double> tx_per_s;
  RunResult summary;  ///< whole-run totals (latency window = whole run)
};
TimelineResult run_responsiveness_timeline(
    const core::Config& cfg, const client::WorkloadConfig& wl,
    double horizon_s, double bucket_s, double fluct_start_s,
    double fluct_end_s, sim::Duration fluct_lo, sim::Duration fluct_hi,
    double crash_at_s, types::NodeId crash_replica,
    FaultKind fault = FaultKind::kSilence);

}  // namespace bamboo::harness
