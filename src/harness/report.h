#pragma once

// Result persistence: the paper's figures and tables are data artifacts, so
// every bench run can land on disk as machine-readable CSV/JSON rows with
// full provenance (which spec produced the number) and multi-seed statistics
// (mean + 95% CI). The subsystem is three layers:
//
//   Record        one flattened (provenance, result, CI) row
//   ResultSink    serializes an ordered row set (CsvSink / JsonSink)
//   ArtifactWriter one file per figure/table under --out, plus manifest.json
//
// plus merge_records(), which unions per-run rows from cross-process shards
// (--shard i/n) and regenerates aggregate rows bit-identical to the
// unsharded run — the library core of the bench_merge tool.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "util/json.h"

namespace bamboo::harness::report {

/// Flattened RunSpec provenance — the experiment-defining columns of the
/// emitter schema (Table I parameters + workload + windows + seeds).
struct Provenance {
  std::string protocol;
  std::uint32_t n_replicas = 4;
  std::uint32_t byz_no = 0;
  std::string strategy;
  std::string election;
  std::uint32_t bsize = 400;
  std::uint32_t psize = 0;
  std::uint32_t memsize = 20000;
  double delay_ms = 0;
  double delay_jitter_ms = 0;
  double timeout_ms = 0;
  // WAN scenario engine provenance (string-keyed, flat).
  std::string link_model = "normal";
  double link_shape = 0;
  double link_loss = 0;
  std::string topology = "uniform";
  // Network-churn engine provenance: the canonical churn DSL of the
  // EFFECTIVE schedule (programmatic FaultPlan events + the cfg.churn
  // DSL, exactly what execute() installs), so re-parsing a persisted row
  // yields the schedule the run executed; empty = no churn. The
  // Gilbert-Elliott bursty-loss channel parameters ride as four flat
  // columns like the rest of the link model.
  std::string churn;
  double ge_p = 0;
  double ge_r = 0;
  double ge_loss_good = 0;
  double ge_loss_bad = 1.0;
  // Recovery & state-sync provenance (sync/syncer.h), flat like the rest.
  std::uint32_t sync_batch = 1;
  double sync_timeout_ms = 500;
  std::uint32_t sync_retries = 3;
  // Durable ledger + snapshot state transfer provenance (storage/
  // block_store.h, sync/syncer.h accelerators), flat like the rest.
  std::uint32_t sync_pipeline = 1;
  std::uint32_t snapshot_gap = 0;
  std::string store = "memory";
  std::uint32_t retention = 0;
  // Certificate-verification pipeline provenance (quorum/cert_verifier.h +
  // the Replica cost model), flat like the rest.
  std::string verify_strategy = "eager";
  std::uint32_t cpu_workers = 1;
  double cpu_verify_per_sig_us = 0;
  double cpu_verify_batch_base_us = 100;
  double cpu_verify_batch_per_sig_us = 2;
  std::string mode;  ///< "closed" | "open"
  std::uint32_t concurrency = 0;
  double arrival_rate_tps = 0;
  // Open-loop load engine + mempool admission provenance (client/workload.h
  // arrival DSL, mempool/mempool.h admission DSL), flat like the rest.
  std::string arrival = "poisson";
  std::uint64_t client_population = 0;
  std::string admission = "drop";
  std::uint64_t seed = 0;       ///< this run's seed (base_seed + rep)
  std::uint64_t base_seed = 0;  ///< repetition base seed
  double warmup_s = 0;
  double measure_s = 0;
  double offered = 0;  ///< sweep label (concurrency, λ, N, byz, ...)

  bool operator==(const Provenance&) const = default;
};

/// Flatten the spec; `rep` shifts the seed the way run_repeated_grid does.
Provenance provenance_of(const RunSpec& spec, std::uint32_t rep = 0);

/// 95% CI half-widths for the headline metrics; all zero on per-run rows.
struct CiSet {
  double throughput_tps = 0;
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  double cgr_per_view = 0;
  double cgr_per_block = 0;
  double block_interval = 0;

  bool operator==(const CiSet&) const = default;
};

/// One emitted row. kind == "run" carries a single seed's RunResult; kind ==
/// "aggregate" carries rep-order means in `result` (counters rounded to the
/// nearest integer, safety_violations summed, consistent = all consistent)
/// and the CI half-widths in `ci`. kind == "timeline" carries one
/// throughput bucket of a timeline-enabled run (Fig. 15): rep is the
/// bucket index, prov.offered the bucket start in seconds,
/// result.throughput_tps the committed-tx rate inside the bucket, and
/// result.measured_s the bucket width — flat rows that survive the shard
/// merge, unlike the free-form side tables they replace.
struct Record {
  std::string bench;     ///< bench id, e.g. "fig12_scalability"
  std::string artifact;  ///< figure/table name; keys the artifact file
  std::string series;    ///< series label, e.g. "HS-b400"
  std::string kind;      ///< "run" | "aggregate"
  std::uint32_t spec_index = 0;  ///< position in the bench's spec grid
  std::uint32_t rep = 0;         ///< repetition (0 on aggregate rows)
  std::uint32_t reps = 1;        ///< repetitions behind this row's spec
  Provenance prov;
  RunResult result;
  CiSet ci;

  bool operator==(const Record&) const = default;
};

Record make_run_record(const std::string& bench, const std::string& artifact,
                       const std::string& series, std::uint32_t spec_index,
                       const RunSpec& spec, std::uint32_t rep,
                       std::uint32_t reps, const RunResult& result);

/// Fold `results` (rep order, rep r under seed base + r) into an aggregate
/// row. Statistics go through the same RunningStats::merge path as
/// harness::Aggregate, so a row regenerated from merged shard files is
/// bit-identical to the one the unsharded run emits.
Record make_aggregate_record(const std::string& bench,
                             const std::string& artifact,
                             const std::string& series,
                             std::uint32_t spec_index, const RunSpec& spec,
                             const std::vector<RunResult>& results);

/// One kind == "timeline" row per throughput bucket of `out` (empty when
/// the run captured no timeline). Persisting buckets as records — instead
/// of a free-form side table — lets sharded runs carry their timelines
/// through bench_merge bit-identically.
std::vector<Record> make_timeline_records(const std::string& bench,
                                          const std::string& artifact,
                                          const std::string& series,
                                          std::uint32_t spec_index,
                                          const RunSpec& spec,
                                          const RunOutput& out);

// --- serialization ---------------------------------------------------------

/// The fixed CSV column order (also the JSON member set).
const std::vector<std::string>& csv_columns();
std::string csv_header();
std::string csv_row(const Record& r);

util::Json to_json(const Record& r);
Record record_from_json(const util::Json& j);

/// Parse one artifact document (the JsonSink layout) back into records.
std::vector<Record> records_from_json_text(const std::string& text);

/// Serializes an ordered set of records into one artifact file body.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void add(const Record& r) = 0;
  [[nodiscard]] virtual std::string serialize() const = 0;
  [[nodiscard]] virtual const char* format() const = 0;  ///< "csv" | "json"
};

/// Header + one line per record; doubles use Json::number_to_string, so CSV
/// and JSON emit bit-identical numbers.
class CsvSink final : public ResultSink {
 public:
  void add(const Record& r) override { rows_.push_back(csv_row(r)); }
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] const char* format() const override { return "csv"; }

 private:
  std::vector<std::string> rows_;
};

/// One compact JSON document: {"records":[...],"schema":...}.
class JsonSink final : public ResultSink {
 public:
  void add(const Record& r) override { records_.push_back(to_json(r)); }
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] const char* format() const override { return "json"; }

 private:
  util::Json::Array records_;
};

// --- artifact directory ----------------------------------------------------

/// One file written under the --out directory.
struct ArtifactFile {
  std::string artifact;
  std::string format;
  std::string path;  ///< relative to the out directory
  std::size_t records = 0;
};

/// Collects records per artifact (figure/table) and, on finish(), writes
/// one file per (artifact, format) plus a manifest. Sharded runs append the
/// shard tag to every filename (fig12.shard2of3.csv, manifest.shard2of3.json)
/// so N shards can share one directory or be rsync'ed into one.
class ArtifactWriter {
 public:
  /// Empty out_dir disables the writer (enabled() == false, add/finish
  /// are no-ops).
  ArtifactWriter(std::string out_dir, std::string bench,
                 std::vector<std::string> formats, Shard shard = {});

  [[nodiscard]] bool enabled() const { return !out_dir_.empty(); }
  void add(const std::string& artifact, const Record& r);
  /// Free-form side table (e.g. Fig. 15 timelines): CSV + a JSON document
  /// with {"headers":[...],"rows":[[...]]}.
  void add_table(const std::string& artifact,
                 std::vector<std::string> headers,
                 std::vector<std::vector<std::string>> rows);

  /// Write every artifact file and the manifest; returns what was written
  /// (empty when disabled).
  std::vector<ArtifactFile> finish();

 private:
  std::string out_dir_;
  std::string bench_;
  std::vector<std::string> formats_;
  Shard shard_;
  std::vector<std::string> order_;  ///< artifact names in first-add order
  std::map<std::string, std::vector<Record>> records_;
  struct Table {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::map<std::string, Table> tables_;
};

// --- shard merge -----------------------------------------------------------

/// Union per-run rows from any number of shard files, order them by
/// (bench, artifact, spec_index, rep), and regenerate one aggregate row per
/// spec by the same rep-order fold the unsharded run uses. Timeline rows
/// pass through in (artifact, spec_index, bucket) order. Input aggregate
/// rows are dropped (they are recomputed); duplicate (artifact, spec_index,
/// rep) rows throw std::invalid_argument.
std::vector<Record> merge_records(std::vector<Record> rows);

}  // namespace bamboo::harness::report
