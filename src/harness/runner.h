#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/stats.h"

namespace bamboo::harness {

/// One slice of a cross-process partition: shard index/count deterministically
/// split a flattened (spec × repetition) job list so N processes on N
/// machines each execute a disjoint subset, and the union over all shards is
/// exactly the full list. Job j belongs to shard `j % count == index`, so the
/// partition depends only on the grid, never on thread scheduling.
struct Shard {
  std::uint32_t index = 0;  ///< 0-based shard id, < count
  std::uint32_t count = 1;  ///< total shards; 1 = sharding disabled

  [[nodiscard]] bool enabled() const { return count > 1; }
  [[nodiscard]] bool owns(std::size_t job) const {
    return job % count == index;
  }
  /// Filename-friendly tag, e.g. "shard2of3"; empty when disabled.
  [[nodiscard]] std::string label() const;
  /// Parse the CLI form "i/n" with 1-based i in [1, n]; throws
  /// std::invalid_argument on malformed or out-of-range input.
  static Shard parse(const std::string& text);

  bool operator==(const Shard&) const = default;
};

struct RunnerOptions {
  /// Worker threads. 0 = auto: the BAMBOO_THREADS environment variable if
  /// set, otherwise std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// One metric aggregated across repeated (multi-seed) runs.
struct MetricSummary {
  util::RunningStats stats;

  [[nodiscard]] double mean() const { return stats.mean(); }
  [[nodiscard]] double stddev() const { return stats.stddev(); }
  /// Half-width of the 95% confidence interval on the mean (Student-t
  /// critical values, exact at the small rep counts benches use).
  [[nodiscard]] double ci95() const;
};

/// Cross-seed aggregate of the headline metrics. Built by merging one
/// single-run accumulator per seed, in seed order, via
/// util::RunningStats::merge — so the aggregate is deterministic no matter
/// how the underlying runs were scheduled across threads.
struct Aggregate {
  std::size_t runs = 0;
  MetricSummary throughput_tps;
  MetricSummary latency_ms_mean;
  MetricSummary latency_ms_p99;
  MetricSummary cgr_per_view;
  MetricSummary cgr_per_block;
  MetricSummary block_interval;
  bool all_consistent = true;
  std::uint64_t safety_violations = 0;
  /// Per-seed results in seed order (results[i] ran seed base_seed + i).
  std::vector<RunResult> results;

  /// Fold one run into the aggregate (call in deterministic order).
  void add(const RunResult& r);
};

/// Output of ParallelRunner::run_repeated_grid: the executed jobs (this
/// shard's slice of the flattened spec × rep list) and per-spec aggregates.
struct GridRun {
  struct Job {
    std::uint32_t spec_index = 0;
    std::uint32_t rep = 0;  ///< repetition index; ran seed base_seed + rep
    RunResult result;
  };
  /// Jobs this shard executed, ordered by flattened job index.
  std::vector<Job> jobs;
  /// aggregates[i] is the rep-order fold for grid[i]; disengaged when this
  /// shard did not execute every rep of spec i (merge across shards with
  /// bench_merge / report::merge_records).
  std::vector<std::optional<Aggregate>> aggregates;
};

/// Fans independent RunSpecs across a pool of std::threads.
///
/// Each spec is a self-contained, seed-deterministic simulation (one
/// sim::Simulator per run, pinned to whichever worker executes it), so runs
/// never share mutable state and the result of every spec is bit-identical
/// to executing it alone on one thread. Scheduling is work-stealing: specs
/// are dealt round-robin into per-worker deques; a worker drains its own
/// deque from the front and steals from the back of its peers when idle, so
/// a single slow run (e.g. Streamlet at N=64) cannot strand the rest of the
/// grid behind it. Results are always returned ordered by spec index.
class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions opts = {});
  explicit ParallelRunner(unsigned threads)
      : ParallelRunner(RunnerOptions{threads}) {}

  /// Worker threads this runner will use (>= 1).
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Execute every spec; results[i] corresponds to specs[i]. Exceptions
  /// thrown by a run are re-thrown on the calling thread after the pool
  /// drains.
  std::vector<RunResult> run(const std::vector<RunSpec>& specs);

  /// As run(), but keeps each run's optional throughput timeline.
  std::vector<RunOutput> run_full(const std::vector<RunSpec>& specs);

  /// Multi-seed repetition: execute `spec` under seeds base_seed + 0..n-1
  /// in parallel and aggregate the headline metrics with confidence
  /// intervals. base_seed = 0 reuses the spec's own seed as the base.
  Aggregate run_repeated(const RunSpec& spec, std::uint32_t repetitions,
                         std::uint64_t base_seed = 0);

  /// Multi-seed repetition across a whole grid, with optional cross-process
  /// sharding. The flattened job list is spec-major, rep-minor (job
  /// j = spec_index * reps + rep; rep r runs seed spec.cfg.seed + r); the
  /// shard executes only the jobs it owns, all in one submission so every
  /// series overlaps. Aggregates are folded per spec in rep order and
  /// reported only for specs whose reps all ran in this shard — a sharded
  /// process holds partial rep sets, which bench_merge recombines into
  /// aggregates bit-identical to the unsharded run.
  GridRun run_repeated_grid(const std::vector<RunSpec>& grid,
                            std::uint32_t reps, Shard shard = {});

  /// Resolve a requested thread count: requested > 0 wins, then
  /// BAMBOO_THREADS, then hardware_concurrency(); never less than 1.
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);

 private:
  unsigned threads_;
};

/// Closed-loop sweep through a runner: the same points as
/// sweep_closed_loop(cfg, ...), executed in parallel, bit-identical output.
std::vector<SweepPoint> sweep_closed_loop(
    ParallelRunner& runner, const core::Config& cfg,
    const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies,
    const RunOptions& opts = {});

/// Open-loop sweep through a runner.
std::vector<SweepPoint> sweep_open_loop(ParallelRunner& runner,
                                        const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts = {});

}  // namespace bamboo::harness
