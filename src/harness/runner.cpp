#include "harness/runner.h"

#include <cmath>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace bamboo::harness {

namespace {

/// Per-worker job deque. Owners pop the front, thieves take the back; the
/// mutex is uncontended except around steals, and jobs are coarse (whole
/// simulations), so this is nowhere near the scheduling hot path.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> jobs;
};

/// Run fn(i) for every i in [0, n) on `threads` workers; fn(i) must only
/// write state owned by job i. The first exception (by completion order) is
/// re-thrown on the caller after all workers join.
template <typename Fn>
void for_each_index(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));

  std::vector<WorkerQueue> queues(workers);
  // Round-robin deal preserves locality of neighbouring sweep points per
  // worker while work stealing rebalances skewed grids.
  for (std::size_t i = 0; i < n; ++i) {
    queues[i % workers].jobs.push_back(i);
  }

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker_main = [&](unsigned self) {
    for (;;) {
      std::optional<std::size_t> job;
      {
        std::lock_guard<std::mutex> lock(queues[self].mu);
        if (!queues[self].jobs.empty()) {
          job = queues[self].jobs.front();
          queues[self].jobs.pop_front();
        }
      }
      if (!job) {
        // Steal from the busiest-looking peer, scanning from our right.
        for (unsigned k = 1; k < workers && !job; ++k) {
          const unsigned victim = (self + k) % workers;
          std::lock_guard<std::mutex> lock(queues[victim].mu);
          if (!queues[victim].jobs.empty()) {
            job = queues[victim].jobs.back();
            queues[victim].jobs.pop_back();
          }
        }
      }
      if (!job) return;  // every deque empty: drained
      try {
        fn(*job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker_main, w);
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::string Shard::label() const {
  if (!enabled()) return "";
  return "shard" + std::to_string(index + 1) + "of" + std::to_string(count);
}

Shard Shard::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    throw std::invalid_argument("shard must be of the form i/n: " + text);
  }
  char* end = nullptr;
  const unsigned long i = std::strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) {
    throw std::invalid_argument("bad shard index in: " + text);
  }
  const char* count_start = text.c_str() + slash + 1;
  const unsigned long n = std::strtoul(count_start, &end, 10);
  if (*end != '\0') {
    throw std::invalid_argument("bad shard count in: " + text);
  }
  if (n == 0 || i == 0 || i > n) {
    throw std::invalid_argument("shard index must be in [1, n]: " + text);
  }
  return Shard{static_cast<std::uint32_t>(i - 1),
               static_cast<std::uint32_t>(n)};
}

double MetricSummary::ci95() const { return stats.ci95(); }

void Aggregate::add(const RunResult& r) {
  ++runs;
  // One single-sample accumulator per metric, merged in: the aggregate is
  // a pure fold over results in seed order, independent of which thread
  // produced each result.
  const auto merge_one = [](MetricSummary& summary, double value) {
    util::RunningStats one;
    one.add(value);
    summary.stats.merge(one);
  };
  merge_one(throughput_tps, r.throughput_tps);
  merge_one(latency_ms_mean, r.latency_ms_mean);
  merge_one(latency_ms_p99, r.latency_ms_p99);
  merge_one(cgr_per_view, r.cgr_per_view);
  merge_one(cgr_per_block, r.cgr_per_block);
  merge_one(block_interval, r.block_interval);
  all_consistent = all_consistent && r.consistent;
  safety_violations += r.safety_violations;
}

unsigned ParallelRunner::resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BAMBOO_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelRunner::ParallelRunner(RunnerOptions opts)
    : threads_(resolve_threads(opts.threads)) {}

std::vector<RunResult> ParallelRunner::run(const std::vector<RunSpec>& specs) {
  std::vector<RunResult> results(specs.size());
  for_each_index(specs.size(), threads_,
                 [&](std::size_t i) { results[i] = execute(specs[i]); });
  return results;
}

std::vector<RunOutput> ParallelRunner::run_full(
    const std::vector<RunSpec>& specs) {
  std::vector<RunOutput> outputs(specs.size());
  for_each_index(specs.size(), threads_,
                 [&](std::size_t i) { outputs[i] = execute_full(specs[i]); });
  return outputs;
}

Aggregate ParallelRunner::run_repeated(const RunSpec& spec,
                                       std::uint32_t repetitions,
                                       std::uint64_t base_seed) {
  if (base_seed == 0) base_seed = spec.cfg.seed;
  std::vector<RunSpec> specs;
  specs.reserve(repetitions);
  for (std::uint32_t i = 0; i < repetitions; ++i) {
    specs.push_back(spec.with_seed(base_seed + i));
  }
  Aggregate agg;
  agg.results = run(specs);
  for (const RunResult& r : agg.results) agg.add(r);
  return agg;
}

GridRun ParallelRunner::run_repeated_grid(const std::vector<RunSpec>& grid,
                                          std::uint32_t reps, Shard shard) {
  if (reps == 0) reps = 1;
  GridRun out;
  out.aggregates.resize(grid.size());

  // This shard's slice of the flattened spec-major, rep-minor job list.
  std::vector<RunSpec> owned_specs;
  for (std::size_t s = 0; s < grid.size(); ++s) {
    const std::uint64_t base_seed = grid[s].cfg.seed;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::size_t job = s * reps + r;
      if (!shard.owns(job)) continue;
      out.jobs.push_back(GridRun::Job{static_cast<std::uint32_t>(s), r, {}});
      owned_specs.push_back(grid[s].with_seed(base_seed + r));
    }
  }

  const std::vector<RunResult> results = run(owned_specs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.jobs[i].result = results[i];
  }

  // Fold per-spec aggregates in rep order; only specs whose whole rep set
  // ran here get one (always true when sharding is disabled).
  std::size_t i = 0;
  while (i < out.jobs.size()) {
    const std::uint32_t s = out.jobs[i].spec_index;
    std::size_t end = i;
    while (end < out.jobs.size() && out.jobs[end].spec_index == s) ++end;
    if (end - i == reps) {
      Aggregate agg;
      for (std::size_t j = i; j < end; ++j) {
        agg.results.push_back(out.jobs[j].result);
        agg.add(out.jobs[j].result);
      }
      out.aggregates[s] = std::move(agg);
    }
    i = end;
  }
  return out;
}

std::vector<SweepPoint> sweep_closed_loop(
    ParallelRunner& runner, const core::Config& cfg,
    const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  const auto specs = closed_loop_specs(cfg, base_wl, concurrencies, opts);
  return to_sweep_points(specs, runner.run(specs));
}

std::vector<SweepPoint> sweep_open_loop(ParallelRunner& runner,
                                        const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts) {
  const auto specs = open_loop_specs(cfg, base_wl, rates_tps, opts);
  return to_sweep_points(specs, runner.run(specs));
}

}  // namespace bamboo::harness
