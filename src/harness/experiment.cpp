#include "harness/experiment.h"

#include <memory>

#include "util/stats.h"

namespace bamboo::harness {

namespace {

/// Observer-side accumulators for CGR and block intervals.
struct ObserverState {
  bool measuring = false;
  util::RunningStats block_intervals;
  std::uint64_t committed_in_window = 0;
};

struct Snapshot {
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_forked = 0;
  types::View view = 0;
  std::uint64_t timeouts = 0;

  static Snapshot of(const Cluster& cluster) {
    const core::Replica& obs = cluster.replica(0);
    Snapshot s;
    s.blocks_received = obs.stats().blocks_received;
    s.blocks_committed = obs.stats().blocks_committed;
    s.blocks_forked = obs.stats().blocks_forked;
    s.view = obs.current_view();
    s.timeouts = cluster.total_timeouts();
    return s;
  }
};

RunResult finalize(Cluster& cluster, client::WorkloadDriver& driver,
                   const ObserverState& obs, const Snapshot& before,
                   const Snapshot& after) {
  RunResult r;
  r.measured_s = driver.measured_seconds();
  r.throughput_tps =
      r.measured_s > 0
          ? static_cast<double>(driver.measured_completed()) / r.measured_s
          : 0.0;
  auto& lat = driver.latencies_ms();
  r.latency_samples = lat.count();
  if (!lat.empty()) {
    r.latency_ms_mean = lat.mean();
    r.latency_ms_p50 = lat.percentile(50);
    r.latency_ms_p99 = lat.percentile(99);
  }

  r.views = after.view - before.view;
  r.blocks_committed = after.blocks_committed - before.blocks_committed;
  r.blocks_received = after.blocks_received - before.blocks_received;
  r.blocks_forked = after.blocks_forked - before.blocks_forked;
  r.timeouts = after.timeouts - before.timeouts;
  r.rejected = driver.stats().rejected;

  r.cgr_per_view = r.views > 0 ? static_cast<double>(r.blocks_committed) /
                                     static_cast<double>(r.views)
                               : 0.0;
  r.cgr_per_block =
      r.blocks_received > 0
          ? static_cast<double>(r.blocks_committed) /
                static_cast<double>(r.blocks_received)
          : 0.0;
  r.block_interval = obs.block_intervals.mean();

  r.consistent = cluster.check_consistency().consistent;
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    r.safety_violations += cluster.replica(id).stats().safety_violations;
  }
  return r;
}

client::WorkloadConfig with_payload(const client::WorkloadConfig& wl,
                                    const core::Config& cfg) {
  client::WorkloadConfig out = wl;
  out.payload_size = cfg.psize;
  return out;
}

}  // namespace

RunResult run_experiment(const core::Config& cfg,
                         const client::WorkloadConfig& wl,
                         const RunOptions& opts) {
  Cluster cluster(cfg);
  auto obs = std::make_shared<ObserverState>();

  core::Replica::Hooks hooks;
  hooks.on_commit_block = [obs](const types::BlockPtr& block,
                                types::View commit_view, sim::Time) {
    if (!obs->measuring) return;
    ++obs->committed_in_window;
    if (commit_view > block->view()) {
      obs->block_intervals.add(
          static_cast<double>(commit_view - block->view()));
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), with_payload(wl, cfg));
  driver.install();
  cluster.start();
  driver.start();

  cluster.simulator().run_for(sim::from_seconds(opts.warmup_s));
  const Snapshot before = Snapshot::of(cluster);
  driver.begin_measurement();
  obs->measuring = true;

  cluster.simulator().run_for(sim::from_seconds(opts.measure_s));
  obs->measuring = false;
  driver.end_measurement();
  const Snapshot after = Snapshot::of(cluster);
  driver.stop();

  return finalize(cluster, driver, *obs, before, after);
}

std::vector<SweepPoint> sweep_closed_loop(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  std::vector<SweepPoint> points;
  points.reserve(concurrencies.size());
  for (std::uint32_t c : concurrencies) {
    client::WorkloadConfig wl = base_wl;
    wl.mode = client::LoadMode::kClosedLoop;
    wl.concurrency = c;
    points.push_back(SweepPoint{static_cast<double>(c),
                                run_experiment(cfg, wl, opts)});
  }
  return points;
}

std::vector<SweepPoint> sweep_open_loop(const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts) {
  std::vector<SweepPoint> points;
  points.reserve(rates_tps.size());
  for (double rate : rates_tps) {
    client::WorkloadConfig wl = base_wl;
    wl.mode = client::LoadMode::kOpenLoop;
    wl.arrival_rate_tps = rate;
    points.push_back(SweepPoint{rate, run_experiment(cfg, wl, opts)});
  }
  return points;
}

TimelineResult run_responsiveness_timeline(
    const core::Config& cfg, const client::WorkloadConfig& wl,
    double horizon_s, double bucket_s, double fluct_start_s,
    double fluct_end_s, sim::Duration fluct_lo, sim::Duration fluct_hi,
    double crash_at_s, types::NodeId crash_replica, FaultKind fault) {
  Cluster cluster(cfg);
  auto obs = std::make_shared<ObserverState>();
  obs->measuring = true;

  core::Replica::Hooks hooks;
  hooks.on_commit_block = [obs](const types::BlockPtr& block,
                                types::View commit_view, sim::Time) {
    if (commit_view > block->view()) {
      obs->block_intervals.add(
          static_cast<double>(commit_view - block->view()));
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), with_payload(wl, cfg));
  util::TimelineCounter timeline(bucket_s, horizon_s);
  driver.set_timeline(&timeline);
  driver.install();

  auto& simulator = cluster.simulator();
  simulator.schedule_at(sim::from_seconds(fluct_start_s),
                        [&cluster, fluct_lo, fluct_hi] {
                          cluster.network().set_fluctuation(fluct_lo,
                                                            fluct_hi);
                        });
  simulator.schedule_at(sim::from_seconds(fluct_end_s), [&cluster] {
    cluster.network().set_fluctuation(0, 0);
  });
  if (crash_at_s > 0) {
    simulator.schedule_at(sim::from_seconds(crash_at_s),
                          [&cluster, crash_replica, fault] {
                            if (fault == FaultKind::kCrash) {
                              cluster.crash_replica(crash_replica);
                            } else {
                              cluster.silence_replica(crash_replica);
                            }
                          });
  }

  cluster.start();
  driver.start();
  driver.begin_measurement();
  const Snapshot before{};  // zero: whole run counted
  simulator.run_for(sim::from_seconds(horizon_s));
  driver.end_measurement();
  const Snapshot after = Snapshot::of(cluster);
  driver.stop();

  TimelineResult result;
  result.summary = finalize(cluster, driver, *obs, before, after);
  const auto buckets = static_cast<std::size_t>(horizon_s / bucket_s);
  result.bucket_start_s.reserve(buckets);
  result.tx_per_s.reserve(buckets);
  for (std::size_t i = 0; i < buckets && i < timeline.num_buckets(); ++i) {
    result.bucket_start_s.push_back(timeline.bucket_start(i));
    result.tx_per_s.push_back(timeline.rate(i));
  }
  return result;
}

}  // namespace bamboo::harness
