#include "harness/experiment.h"

#include <memory>
#include <utility>

#include "util/stats.h"

namespace bamboo::harness {

namespace {

/// Observer-side accumulators for CGR and block intervals.
struct ObserverState {
  bool measuring = false;
  util::RunningStats block_intervals;
  std::uint64_t committed_in_window = 0;
};

struct Snapshot {
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_forked = 0;
  types::View view = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t net_bytes = 0;

  static Snapshot of(const Cluster& cluster) {
    const core::Replica& obs = cluster.replica(0);
    Snapshot s;
    s.blocks_received = obs.stats().blocks_received;
    s.blocks_committed = obs.stats().blocks_committed;
    s.blocks_forked = obs.stats().blocks_forked;
    s.view = obs.current_view();
    s.timeouts = cluster.total_timeouts();
    s.net_bytes = cluster.network().bytes_sent();
    return s;
  }
};

RunResult finalize(Cluster& cluster, client::WorkloadDriver& driver,
                   const ObserverState& obs, const Snapshot& before,
                   const Snapshot& after) {
  RunResult r;
  r.measured_s = driver.measured_seconds();
  r.throughput_tps =
      r.measured_s > 0
          ? static_cast<double>(driver.measured_completed()) / r.measured_s
          : 0.0;
  auto& lat = driver.latencies_ms();
  r.latency_samples = lat.count();
  if (!lat.empty()) {
    r.latency_ms_mean = lat.mean();
    r.latency_ms_p50 = lat.percentile(50);
    r.latency_ms_p99 = lat.percentile(99);
  }

  r.views = after.view - before.view;
  r.blocks_committed = after.blocks_committed - before.blocks_committed;
  r.blocks_received = after.blocks_received - before.blocks_received;
  r.blocks_forked = after.blocks_forked - before.blocks_forked;
  r.timeouts = after.timeouts - before.timeouts;
  r.net_bytes = after.net_bytes - before.net_bytes;
  r.rejected = driver.stats().rejected;

  r.cgr_per_view = r.views > 0 ? static_cast<double>(r.blocks_committed) /
                                     static_cast<double>(r.views)
                               : 0.0;
  r.cgr_per_block =
      r.blocks_received > 0
          ? static_cast<double>(r.blocks_committed) /
                static_cast<double>(r.blocks_received)
          : 0.0;
  r.block_interval = obs.block_intervals.mean();

  r.consistent = cluster.check_consistency().consistent;
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    r.safety_violations += cluster.replica(id).stats().safety_violations;
  }
  return r;
}

client::WorkloadConfig with_payload(const client::WorkloadConfig& wl,
                                    const core::Config& cfg) {
  client::WorkloadConfig out = wl;
  out.payload_size = cfg.psize;
  return out;
}

/// Schedule the spec's fluctuation window and fault injection.
void install_fault_plan(Cluster& cluster, const FaultPlan& plan) {
  auto& simulator = cluster.simulator();
  // Both ends must be given: a lone start would schedule the reset at a
  // negative time (clamped to t=0) and leave the fluctuation on forever.
  if (plan.fluct_start_s >= 0 && plan.fluct_end_s >= plan.fluct_start_s) {
    const sim::Duration lo = plan.fluct_lo;
    const sim::Duration hi = plan.fluct_hi;
    simulator.schedule_at(sim::from_seconds(plan.fluct_start_s),
                          [&cluster, lo, hi] {
                            cluster.network().set_fluctuation(lo, hi);
                          });
    simulator.schedule_at(sim::from_seconds(plan.fluct_end_s), [&cluster] {
      cluster.network().set_fluctuation(0, 0);
    });
  }
  if (plan.crash_at_s > 0) {
    const types::NodeId victim = plan.crash_replica;
    const FaultKind fault = plan.fault;
    simulator.schedule_at(sim::from_seconds(plan.crash_at_s),
                          [&cluster, victim, fault] {
                            if (fault == FaultKind::kCrash) {
                              cluster.crash_replica(victim);
                            } else {
                              cluster.silence_replica(victim);
                            }
                          });
  }
}

}  // namespace

RunOutput execute_full(const RunSpec& spec) {
  Cluster cluster(spec.cfg);
  auto obs = std::make_shared<ObserverState>();
  obs->measuring = spec.measure_whole_run;

  core::Replica::Hooks hooks;
  hooks.on_commit_block = [obs](const types::BlockPtr& block,
                                types::View commit_view, sim::Time) {
    if (!obs->measuring) return;
    ++obs->committed_in_window;
    if (commit_view > block->view()) {
      obs->block_intervals.add(
          static_cast<double>(commit_view - block->view()));
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(),
                                with_payload(spec.workload, spec.cfg));

  // The simulated span: whole-run mode never executes the warm-up window.
  const double horizon_s = spec.measure_whole_run
                               ? spec.opts.measure_s
                               : spec.opts.warmup_s + spec.opts.measure_s;
  std::unique_ptr<util::TimelineCounter> timeline;
  if (spec.timeline_bucket_s > 0) {
    timeline = std::make_unique<util::TimelineCounter>(spec.timeline_bucket_s,
                                                       horizon_s);
    driver.set_timeline(timeline.get());
  }
  driver.install();
  install_fault_plan(cluster, spec.faults);

  cluster.start();
  driver.start();

  Snapshot before{};  // zero baseline (whole-run mode)
  if (spec.measure_whole_run) {
    driver.begin_measurement();
  } else {
    cluster.simulator().run_for(sim::from_seconds(spec.opts.warmup_s));
    before = Snapshot::of(cluster);
    driver.begin_measurement();
    obs->measuring = true;
  }

  cluster.simulator().run_for(sim::from_seconds(spec.opts.measure_s));
  obs->measuring = false;
  driver.end_measurement();
  const Snapshot after = Snapshot::of(cluster);
  driver.stop();

  RunOutput out;
  out.result = finalize(cluster, driver, *obs, before, after);
  if (timeline) {
    const auto buckets =
        static_cast<std::size_t>(horizon_s / spec.timeline_bucket_s);
    out.bucket_start_s.reserve(buckets);
    out.tx_per_s.reserve(buckets);
    for (std::size_t i = 0; i < buckets && i < timeline->num_buckets(); ++i) {
      out.bucket_start_s.push_back(timeline->bucket_start(i));
      out.tx_per_s.push_back(timeline->rate(i));
    }
  }
  return out;
}

RunResult execute(const RunSpec& spec) {
  return execute_full(spec).result;
}

RunResult run_experiment(const core::Config& cfg,
                         const client::WorkloadConfig& wl,
                         const RunOptions& opts) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts = opts;
  return execute(spec);
}

std::vector<RunSpec> closed_loop_specs(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  std::vector<RunSpec> specs;
  specs.reserve(concurrencies.size());
  for (std::uint32_t c : concurrencies) {
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = base_wl;
    spec.workload.mode = client::LoadMode::kClosedLoop;
    spec.workload.concurrency = c;
    spec.opts = opts;
    spec.offered = static_cast<double>(c);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<RunSpec> open_loop_specs(const core::Config& cfg,
                                     const client::WorkloadConfig& base_wl,
                                     const std::vector<double>& rates_tps,
                                     const RunOptions& opts) {
  std::vector<RunSpec> specs;
  specs.reserve(rates_tps.size());
  for (double rate : rates_tps) {
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = base_wl;
    spec.workload.mode = client::LoadMode::kOpenLoop;
    spec.workload.arrival_rate_tps = rate;
    spec.opts = opts;
    spec.offered = rate;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<SweepPoint> to_sweep_points(const std::vector<RunSpec>& specs,
                                        std::vector<RunResult> results) {
  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    points.push_back(SweepPoint{specs[i].offered, std::move(results[i])});
  }
  return points;
}

std::vector<SweepPoint> sweep_closed_loop(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  const auto specs = closed_loop_specs(cfg, base_wl, concurrencies, opts);
  std::vector<RunResult> results;
  results.reserve(specs.size());
  for (const RunSpec& spec : specs) results.push_back(execute(spec));
  return to_sweep_points(specs, std::move(results));
}

std::vector<SweepPoint> sweep_open_loop(const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts) {
  const auto specs = open_loop_specs(cfg, base_wl, rates_tps, opts);
  std::vector<RunResult> results;
  results.reserve(specs.size());
  for (const RunSpec& spec : specs) results.push_back(execute(spec));
  return to_sweep_points(specs, std::move(results));
}

RunSpec timeline_spec(const core::Config& cfg,
                      const client::WorkloadConfig& wl, double horizon_s,
                      double bucket_s, double fluct_start_s,
                      double fluct_end_s, sim::Duration fluct_lo,
                      sim::Duration fluct_hi, double crash_at_s,
                      types::NodeId crash_replica, FaultKind fault) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0;
  spec.opts.measure_s = horizon_s;
  spec.measure_whole_run = true;
  spec.timeline_bucket_s = bucket_s;
  spec.faults.fluct_start_s = fluct_start_s;
  spec.faults.fluct_end_s = fluct_end_s;
  spec.faults.fluct_lo = fluct_lo;
  spec.faults.fluct_hi = fluct_hi;
  spec.faults.crash_at_s = crash_at_s;
  spec.faults.crash_replica = crash_replica;
  spec.faults.fault = fault;
  return spec;
}

TimelineResult run_responsiveness_timeline(
    const core::Config& cfg, const client::WorkloadConfig& wl,
    double horizon_s, double bucket_s, double fluct_start_s,
    double fluct_end_s, sim::Duration fluct_lo, sim::Duration fluct_hi,
    double crash_at_s, types::NodeId crash_replica, FaultKind fault) {
  RunOutput out = execute_full(
      timeline_spec(cfg, wl, horizon_s, bucket_s, fluct_start_s, fluct_end_s,
                    fluct_lo, fluct_hi, crash_at_s, crash_replica, fault));
  TimelineResult result;
  result.summary = std::move(out.result);
  result.bucket_start_s = std::move(out.bucket_start_s);
  result.tx_per_s = std::move(out.tx_per_s);
  return result;
}

}  // namespace bamboo::harness
