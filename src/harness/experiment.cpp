#include "harness/experiment.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/stats.h"

namespace bamboo::harness {

std::string encode_commit_share(
    const std::map<types::NodeId, std::uint64_t>& counts) {
  std::string out;
  for (const auto& [id, count] : counts) {
    if (count == 0) continue;
    if (!out.empty()) out += ';';
    out += std::to_string(id);
    out += ':';
    out += std::to_string(count);
  }
  return out;
}

std::map<types::NodeId, std::uint64_t> decode_commit_share(
    const std::string& text) {
  std::map<types::NodeId, std::uint64_t> counts;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw std::invalid_argument("bad commit_share entry: " + entry);
    }
    try {
      const auto id = static_cast<types::NodeId>(
          std::stoul(entry.substr(0, colon)));
      counts[id] += std::stoull(entry.substr(colon + 1));
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("bad commit_share entry: " + entry);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("bad commit_share entry: " + entry);
    }
    pos = end + 1;
  }
  return counts;
}

DemocracyScalars democracy_scalars(
    const std::map<types::NodeId, std::uint64_t>& counts,
    std::uint32_t n_replicas, std::uint32_t byz_no) {
  DemocracyScalars s;
  if (n_replicas == 0) return s;
  std::uint64_t total = 0, honest = 0, top = 0;
  // Dense count vector over all replicas: silent replicas are zeros —
  // they drag the Gini up exactly like disenfranchised voters should.
  std::vector<std::uint64_t> dense(n_replicas, 0);
  for (const auto& [id, count] : counts) {
    total += count;
    if (count > top) top = count;
    const bool byzantine =
        byz_no > 0 && id < n_replicas && id >= n_replicas - byz_no;
    if (!byzantine) honest += count;
    if (id < n_replicas) dense[id] = count;
  }
  if (total == 0) return s;
  s.chain_quality =
      static_cast<double>(honest) / static_cast<double>(total);
  s.commit_share_max =
      static_cast<double>(top) / static_cast<double>(total);
  // Gini over the ascending-sorted counts:
  //   G = (2 * sum_i i * x_i) / (n * sum x) - (n + 1) / n,  i in 1..n.
  std::sort(dense.begin(), dense.end());
  double weighted = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(dense[i]);
  }
  const double n = static_cast<double>(n_replicas);
  s.proposer_gini =
      2.0 * weighted / (n * static_cast<double>(total)) - (n + 1.0) / n;
  return s;
}

namespace {

/// Observer-side accumulators for CGR and block intervals.
struct ObserverState {
  bool measuring = false;
  util::RunningStats block_intervals;
  std::uint64_t committed_in_window = 0;
  /// Committed blocks per proposer (democracy metrics). Pure observation
  /// on the replica-0 commit hook: counting draws no randomness and sends
  /// nothing, so enabling it never perturbs the schedule.
  std::map<types::NodeId, std::uint64_t> proposer_counts;
};

struct Snapshot {
  std::uint64_t blocks_received = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_forked = 0;
  types::View view = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t sync_requests = 0;
  std::uint64_t sync_blocks = 0;
  std::uint64_t sync_bytes = 0;
  std::uint64_t certs_verified = 0;
  std::uint64_t certs_rejected = 0;
  std::uint64_t mem_admitted = 0;
  std::uint64_t mem_rejected = 0;
  std::uint64_t disk_bytes_written = 0;
  std::uint64_t disk_logical_bytes = 0;
  std::uint64_t store_reads = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_chunks = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t snapshots_rejected = 0;
  std::uint64_t restarts = 0;

  static Snapshot of(const Cluster& cluster) {
    const core::Replica& obs = cluster.replica(0);
    Snapshot s;
    s.blocks_received = obs.stats().blocks_received;
    s.blocks_committed = obs.stats().blocks_committed;
    s.blocks_forked = obs.stats().blocks_forked;
    s.view = obs.current_view();
    s.timeouts = cluster.total_timeouts();
    s.net_bytes = cluster.network().bytes_sent();
    // Sync activity happens at the LAGGING replicas, so these counters
    // are cluster-wide sums, like net_bytes.
    for (types::NodeId id = 0; id < cluster.size(); ++id) {
      const sync::SyncStats& ss = cluster.replica(id).sync_stats();
      s.sync_requests += ss.requests_sent;
      s.sync_blocks += ss.blocks_applied;
      s.sync_bytes += ss.bytes_received;
      // Certificate checks happen at every receiving replica; cluster-wide
      // sums, like the sync counters.
      s.certs_verified += cluster.replica(id).stats().certs_verified;
      s.certs_rejected += cluster.replica(id).stats().certs_rejected;
      // Mempool admission ledger: every replica owns a local pool, so the
      // backpressure counters are cluster-wide sums too.
      s.mem_admitted += cluster.replica(id).pool().admitted_count();
      s.mem_rejected += cluster.replica(id).pool().rejected_count();
      // Snapshot state transfer happens at the catching-up replicas.
      s.snapshot_bytes += ss.snapshot_bytes_received;
      s.snapshot_chunks += ss.snapshot_chunks_received;
      s.snapshots_installed += ss.snapshots_installed;
      s.snapshots_rejected += ss.snapshots_rejected;
      // Durable-ledger accounting comes from the Cluster-owned stores
      // (which survive crash-restarts, so these stay monotonic).
      const storage::StoreStats& st = cluster.store(id).stats();
      s.disk_bytes_written += st.bytes_written;
      s.disk_logical_bytes += st.logical_bytes;
      s.store_reads += st.reads;
    }
    // Counters of replica instances torn down by restart_replica: the new
    // instance restarts at zero, so without these the before/after deltas
    // would go negative across a crash-restart.
    const sync::SyncStats& rsync = cluster.retired_sync_stats();
    s.sync_requests += rsync.requests_sent;
    s.sync_blocks += rsync.blocks_applied;
    s.sync_bytes += rsync.bytes_received;
    s.snapshot_bytes += rsync.snapshot_bytes_received;
    s.snapshot_chunks += rsync.snapshot_chunks_received;
    s.snapshots_installed += rsync.snapshots_installed;
    s.snapshots_rejected += rsync.snapshots_rejected;
    s.certs_verified += cluster.retired_stats().certs_verified;
    s.certs_rejected += cluster.retired_stats().certs_rejected;
    s.mem_admitted += cluster.retired_mem_admitted();
    s.mem_rejected += cluster.retired_mem_rejected();
    s.restarts = cluster.restarts();
    return s;
  }
};

RunResult finalize(Cluster& cluster, client::WorkloadDriver& driver,
                   const ObserverState& obs, const Snapshot& before,
                   const Snapshot& after) {
  RunResult r;
  r.measured_s = driver.measured_seconds();
  r.throughput_tps =
      r.measured_s > 0
          ? static_cast<double>(driver.measured_completed()) / r.measured_s
          : 0.0;
  r.offered_tps =
      r.measured_s > 0
          ? static_cast<double>(driver.measured_issued()) / r.measured_s
          : 0.0;
  auto& lat = driver.latencies_ms();
  r.latency_samples = lat.count();
  if (!lat.empty()) {
    r.latency_ms_mean = lat.mean();
    r.latency_ms_p50 = lat.percentile(50);
    r.latency_ms_p99 = lat.percentile(99);
  }
  const util::LatencyHistogram& hist = driver.latency_hist();
  if (!hist.empty()) {
    r.hist_p50_ms = hist.quantile(0.50);
    r.hist_p99_ms = hist.quantile(0.99);
    r.hist_p999_ms = hist.quantile(0.999);
    r.latency_hist = hist.encode();
  }

  r.views = after.view - before.view;
  r.blocks_committed = after.blocks_committed - before.blocks_committed;
  r.blocks_received = after.blocks_received - before.blocks_received;
  r.blocks_forked = after.blocks_forked - before.blocks_forked;
  r.timeouts = after.timeouts - before.timeouts;
  r.net_bytes = after.net_bytes - before.net_bytes;
  r.sync_requests = after.sync_requests - before.sync_requests;
  r.sync_blocks = after.sync_blocks - before.sync_blocks;
  r.sync_bytes = after.sync_bytes - before.sync_bytes;
  r.certs_verified = after.certs_verified - before.certs_verified;
  r.certs_rejected = after.certs_rejected - before.certs_rejected;
  r.mem_admitted = after.mem_admitted - before.mem_admitted;
  r.mem_rejected = after.mem_rejected - before.mem_rejected;
  r.rejected = driver.stats().rejected;

  r.disk_bytes_written = after.disk_bytes_written - before.disk_bytes_written;
  const std::uint64_t disk_logical =
      after.disk_logical_bytes - before.disk_logical_bytes;
  r.write_amplification =
      disk_logical > 0 ? static_cast<double>(r.disk_bytes_written) /
                             static_cast<double>(disk_logical)
                       : 0.0;
  r.store_reads = after.store_reads - before.store_reads;
  r.snapshot_bytes = after.snapshot_bytes - before.snapshot_bytes;
  r.snapshot_chunks = after.snapshot_chunks - before.snapshot_chunks;
  r.snapshots_installed =
      after.snapshots_installed - before.snapshots_installed;
  r.snapshots_rejected = after.snapshots_rejected - before.snapshots_rejected;
  r.restarts = after.restarts - before.restarts;

  r.cgr_per_view = r.views > 0 ? static_cast<double>(r.blocks_committed) /
                                     static_cast<double>(r.views)
                               : 0.0;
  r.cgr_per_block =
      r.blocks_received > 0
          ? static_cast<double>(r.blocks_committed) /
                static_cast<double>(r.blocks_received)
          : 0.0;
  r.block_interval = obs.block_intervals.mean();

  r.commit_share = encode_commit_share(obs.proposer_counts);
  const DemocracyScalars dem =
      democracy_scalars(obs.proposer_counts, cluster.config().n_replicas,
                        cluster.config().byz_no);
  r.chain_quality = dem.chain_quality;
  r.commit_share_max = dem.commit_share_max;
  r.proposer_gini = dem.proposer_gini;

  r.consistent = cluster.check_consistency().consistent;
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    r.safety_violations += cluster.replica(id).stats().safety_violations;
  }
  return r;
}

client::WorkloadConfig with_payload(const client::WorkloadConfig& wl,
                                    const core::Config& cfg) {
  client::WorkloadConfig out = wl;
  out.payload_size = cfg.psize;
  return out;
}

[[noreturn]] void churn_fail(const core::ChurnEvent& ev,
                             const std::string& why) {
  throw std::invalid_argument("churn event '" +
                              core::format_churn({ev}) + "': " + why);
}

/// Resolve an event's link target into directed (from, to) pairs over the
/// cluster's endpoints, range-checking every id against the config.
std::vector<std::pair<types::NodeId, types::NodeId>> target_links(
    const core::ChurnEvent& ev, const core::Config& cfg) {
  const std::uint32_t n = cfg.num_endpoints();
  std::vector<std::pair<types::NodeId, types::NodeId>> pairs;
  const auto both = [&pairs](types::NodeId a, types::NodeId b) {
    pairs.emplace_back(a, b);
    pairs.emplace_back(b, a);
  };
  switch (ev.target) {
    case core::ChurnTarget::kAll:
      for (types::NodeId from = 0; from < n; ++from) {
        for (types::NodeId to = 0; to < n; ++to) {
          if (from != to) pairs.emplace_back(from, to);
        }
      }
      break;
    case core::ChurnTarget::kLink:
      if (ev.a >= n || ev.b >= n) {
        churn_fail(ev, "link endpoint out of range (have " +
                           std::to_string(n) + " endpoints)");
      }
      if (ev.directed) {
        pairs.emplace_back(ev.a, ev.b);
      } else {
        both(ev.a, ev.b);
      }
      break;
    case core::ChurnTarget::kReplica:
      if (ev.a >= n) {
        churn_fail(ev, "endpoint out of range (have " + std::to_string(n) +
                           " endpoints)");
      }
      for (types::NodeId other = 0; other < n; ++other) {
        if (other != ev.a) both(ev.a, other);
      }
      break;
    case core::ChurnTarget::kRegion: {
      // Round-robin regions as in the wan topology: replica i is in region
      // i % regions. Degrade every link CROSSING the region boundary, both
      // directions — the region's uplink; intra-region links stay LAN.
      // The DSL parser guarantees 1 <= regions and region < regions, but a
      // programmatic FaultPlan can hand us anything (regions defaults to
      // 0, which would be a modulo-by-zero SIGFPE below).
      if (ev.regions < 1 || ev.region >= ev.regions) {
        churn_fail(ev, "region target wants region < regions and "
                       "regions >= 1");
      }
      const auto in_region = [&](types::NodeId id) {
        return id < cfg.n_replicas && id % ev.regions == ev.region;
      };
      for (types::NodeId from = 0; from < n; ++from) {
        for (types::NodeId to = 0; to < n; ++to) {
          if (from == to) continue;
          if (in_region(from) != in_region(to)) pairs.emplace_back(from, to);
        }
      }
      break;
    }
    case core::ChurnTarget::kLeader:
      if (ev.a >= cfg.n_replicas) {
        churn_fail(ev, "leader replica out of range (have " +
                           std::to_string(cfg.n_replicas) + " replicas)");
      }
      for (types::NodeId to = 0; to < n; ++to) {
        if (to != ev.a) pairs.emplace_back(ev.a, to);  // outbound only
      }
      break;
    case core::ChurnTarget::kLeaderFollow:
      // The follow target is resolved dynamically by install_churn's view
      // listener, never to a static link set (and only degrade/restore
      // support it — the DSL parser enforces the same).
      churn_fail(ev, "leader=follow is only valid on degrade/restore");
  }
  return pairs;
}

/// Expand a partition event into SimNetwork's group-of-endpoint vector.
/// Endpoints not named by any group (client hosts, unlisted replicas or
/// regions) join the FIRST group, so the observer side keeps its clients.
std::vector<int> partition_of(const core::ChurnEvent& ev,
                              const core::Config& cfg) {
  std::vector<int> group(cfg.num_endpoints(), 0);
  std::vector<bool> assigned(cfg.num_endpoints(), false);
  const auto assign = [&](types::NodeId id, int g) {
    if (assigned[id]) {
      churn_fail(ev, "replica " + std::to_string(id) +
                         " appears in two partition groups");
    }
    assigned[id] = true;
    group[id] = g;
  };
  for (std::size_t g = 0; g < ev.groups.size(); ++g) {
    for (std::uint32_t member : ev.groups[g]) {
      if (ev.regions > 0) {
        // Region form: member is a region id. The parser validates both,
        // but a programmatic schedule may not have been through it.
        if (member >= ev.regions) {
          churn_fail(ev, "region id " + std::to_string(member) +
                             " out of range for " +
                             std::to_string(ev.regions) + " regions");
        }
        for (types::NodeId id = 0; id < cfg.n_replicas; ++id) {
          if (id % ev.regions == member) assign(id, static_cast<int>(g));
        }
      } else {
        if (member >= cfg.n_replicas) {
          churn_fail(ev, "replica " + std::to_string(member) +
                             " out of range (have " +
                             std::to_string(cfg.n_replicas) + " replicas)");
        }
        assign(member, static_cast<int>(g));
      }
    }
  }
  return group;
}

// --- recovery probe --------------------------------------------------------

struct RecoveryPoll {
  types::Height target = 0;
  std::vector<types::NodeId> lagging;
  std::size_t event_index = 0;
  bool any_caught_up = false;
};

/// Fixed observation cadence; draws no RNG and sends nothing.
constexpr sim::Duration kRecoveryPollPeriod = sim::milliseconds(5);

void poll_recovery(Cluster& cluster, RecoveryProbe& probe,
                   const std::shared_ptr<RecoveryPoll>& poll) {
  std::erase_if(poll->lagging, [&](types::NodeId id) {
    const core::Replica& r = cluster.replica(id);
    if (r.crashed()) return true;  // can never catch up: drop it
    if (r.forest().committed_height() >= poll->target) {
      poll->any_caught_up = true;
      return true;
    }
    return false;
  });
  if (poll->lagging.empty()) {
    // If the list emptied only through crashes, nothing recovered —
    // recording "recovered now" would skew recovery_ms downward.
    if (poll->any_caught_up) {
      probe.events[poll->event_index].recovered_at_s =
          sim::to_seconds(cluster.simulator().now());
    } else {
      probe.events[poll->event_index].abandoned = true;
    }
    return;
  }
  cluster.simulator().schedule_after(kRecoveryPollPeriod, [&cluster, &probe,
                                                          poll] {
    poll_recovery(cluster, probe, poll);
  });
}

/// Sample the cluster at a healing moment; if any honest live replica lags
/// the max committed height, record an event and poll until it caught up.
void arm_recovery_probe(Cluster& cluster, RecoveryProbe& probe) {
  auto poll = std::make_shared<RecoveryPoll>();
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    const core::Replica& r = cluster.replica(id);
    if (r.is_byzantine() || r.crashed()) continue;
    poll->target = std::max(poll->target, r.forest().committed_height());
  }
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    const core::Replica& r = cluster.replica(id);
    if (r.is_byzantine() || r.crashed()) continue;
    if (r.forest().committed_height() < poll->target) {
      poll->lagging.push_back(id);
    }
  }
  if (poll->lagging.empty()) return;
  probe.events.push_back(
      RecoveryProbe::Event{sim::to_seconds(cluster.simulator().now()), -1});
  poll->event_index = probe.events.size() - 1;
  poll_recovery(cluster, probe, poll);
}

// --- repeating events ------------------------------------------------------

struct Repeat {
  std::function<void()> fire;
  sim::Duration period;
};

void schedule_repeating(sim::Simulator& simulator, sim::Time at,
                        const std::shared_ptr<Repeat>& repeat) {
  simulator.schedule_at(at, [&simulator, repeat] {
    repeat->fire();
    // Self-rescheduling keeps exactly one pending occurrence; whatever is
    // pending when the run's horizon ends simply never executes.
    schedule_repeating(simulator, simulator.now() + repeat->period, repeat);
  });
}

}  // namespace

double RecoveryProbe::mean_ms(double end_s) const {
  double sum = 0;
  std::size_t measurable = 0;
  for (const Event& ev : events) {
    if (ev.abandoned) continue;
    const double recovered =
        ev.recovered_at_s >= 0 ? ev.recovered_at_s : end_s;
    sum += (recovered - ev.heal_at_s) * 1e3;
    ++measurable;
  }
  return measurable > 0 ? sum / static_cast<double>(measurable) : 0.0;
}

core::ChurnSchedule effective_churn(const FaultPlan& faults,
                                    const core::Config& cfg) {
  core::ChurnSchedule schedule = faults.schedule;
  if (!cfg.churn.empty()) {
    const core::ChurnSchedule parsed = core::parse_churn(cfg.churn);
    schedule.insert(schedule.end(), parsed.begin(), parsed.end());
  }
  return schedule;
}

void install_churn(Cluster& cluster, const core::ChurnSchedule& schedule,
                   RecoveryProbe* probe) {
  auto& simulator = cluster.simulator();
  const core::Config& cfg = cluster.config();

  // Overlapping-window bookkeeping, shared by this schedule's callbacks:
  // a window's end must not clobber another window that is still open on
  // the same knob (the latest-started open window wins, matching the
  // overwrite order of the start callbacks). Keyed by a per-install
  // monotonically increasing window id.
  struct FluctWindow {
    int id;
    sim::Duration lo, hi;
  };
  struct BurstEntry {
    int id;
    double loss;
  };
  // One leader-follow degradation: the accumulated outbound delay delta
  // moves with the rotating leader via the cluster view listener.
  struct FollowState {
    bool active = false;
    double applied_ns = 0;       ///< outbound delta currently on `current`
    types::NodeId current = 0;   ///< leader carrying the degradation
  };
  struct ActiveWindows {
    std::vector<FluctWindow> fluct;  // open fluct windows, start order
    // Open burst windows per directed link, start order.
    std::map<std::pair<types::NodeId, types::NodeId>,
             std::vector<BurstEntry>> burst;
    int next_window = 0;
    std::vector<std::shared_ptr<FollowState>> follows;
    types::View max_view = 1;  ///< highest view entered cluster-wide
  };
  auto active = std::make_shared<ActiveWindows>();

  // Stop every leader-follow degradation, lifting exactly the delta it
  // applied (not a full baseline reset — concurrent mutations like an
  // open loss burst on the carrier's links must survive).
  const auto deactivate_follows = [&cluster, active] {
    for (const auto& fs : active->follows) {
      if (!fs->active) continue;
      const std::uint32_t n = cluster.config().num_endpoints();
      for (types::NodeId to = 0; to < n; ++to) {
        if (to != fs->current) {
          cluster.network().degrade_link(fs->current, to, -fs->applied_ns);
        }
      }
      fs->active = false;
      fs->applied_ns = 0;
    }
  };

  bool follow_used = false;

  for (const core::ChurnEvent& ev : schedule) {
    const sim::Time at = sim::from_seconds(ev.at_s);
    // One-shot events keep the pre-repetition scheduling shape (events
    // inserted at install time); every=<dur> events self-reschedule.
    // '@timeout' events poll the cluster-wide pacemaker-timeout count on
    // the fixed recovery-probe cadence and fire ONCE at the first observed
    // timeout — pure observation until then, so an armed trigger that
    // never trips perturbs nothing.
    const auto fire_at = [&simulator, &cluster, at,
                          &ev](std::function<void()> fire) {
      if (ev.on_timeout) {
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&simulator, &cluster, tick, fire = std::move(fire)] {
          if (cluster.total_timeouts() > 0) {
            fire();
            return;  // one-shot: stop polling
          }
          simulator.schedule_after(kRecoveryPollPeriod, [tick] { (*tick)(); });
        };
        simulator.schedule_at(at, [tick] { (*tick)(); });
        return;
      }
      if (ev.every_s <= 0) {
        simulator.schedule_at(at, std::move(fire));
      } else {
        schedule_repeating(
            simulator, at,
            std::make_shared<Repeat>(
                Repeat{std::move(fire), sim::from_seconds(ev.every_s)}));
      }
    };
    switch (ev.kind) {
      case core::ChurnKind::kLinkDegrade: {
        if (ev.target == core::ChurnTarget::kLeaderFollow) {
          auto fs = std::make_shared<FollowState>();
          active->follows.push_back(fs);
          follow_used = true;
          const double extra_ns =
              ev.extra_ms * static_cast<double>(sim::kMillisecond);
          fire_at([&cluster, active, fs, extra_ns] {
            if (!fs->active) {
              fs->active = true;
              fs->current = cluster.election().leader(active->max_view);
            }
            fs->applied_ns += extra_ns;
            const std::uint32_t n = cluster.config().num_endpoints();
            for (types::NodeId to = 0; to < n; ++to) {
              if (to != fs->current) {
                cluster.network().degrade_link(fs->current, to, extra_ns);
              }
            }
          });
          break;
        }
        auto pairs = target_links(ev, cfg);
        const double extra_ns =
            ev.extra_ms * static_cast<double>(sim::kMillisecond);
        fire_at([&cluster, pairs = std::move(pairs), extra_ns] {
          for (const auto& [from, to] : pairs) {
            cluster.network().degrade_link(from, to, extra_ns);
          }
        });
        break;
      }
      case core::ChurnKind::kLinkRestore: {
        if (ev.target == core::ChurnTarget::kLeaderFollow) {
          fire_at([&cluster, deactivate_follows, probe] {
            deactivate_follows();
            if (probe) arm_recovery_probe(cluster, *probe);
          });
          break;
        }
        if (ev.target == core::ChurnTarget::kAll) {
          fire_at([&cluster, deactivate_follows, probe] {
            // A full reset also stops any leader-following degradation —
            // otherwise the listener would keep moving a delta that the
            // reset just wiped.
            deactivate_follows();
            cluster.network().restore_all_links();
            if (probe) arm_recovery_probe(cluster, *probe);
          });
          break;
        }
        auto pairs = target_links(ev, cfg);
        fire_at([&cluster, active, pairs = std::move(pairs), probe] {
          for (const auto& [from, to] : pairs) {
            cluster.network().restore_link(from, to);
          }
          // A targeted restore that reset an active follow-carrier's
          // outbound link wiped the follow delta with it: re-impose it,
          // so the later rotation subtraction still lands at baseline.
          for (const auto& fs : active->follows) {
            if (!fs->active) continue;
            for (const auto& [from, to] : pairs) {
              if (from == fs->current && to != fs->current) {
                cluster.network().degrade_link(from, to, fs->applied_ns);
              }
            }
          }
          if (probe) arm_recovery_probe(cluster, *probe);
        });
        break;
      }
      case core::ChurnKind::kPartitionStart: {
        auto groups = partition_of(ev, cfg);
        simulator.schedule_at(at, [&cluster, groups = std::move(groups)] {
          cluster.network().set_partition(groups);
        });
        break;
      }
      case core::ChurnKind::kPartitionHeal:
        simulator.schedule_at(at, [&cluster, probe] {
          cluster.network().set_partition({});
          if (probe) arm_recovery_probe(cluster, *probe);
        });
        break;
      case core::ChurnKind::kLossBurst: {
        auto pairs = target_links(ev, cfg);
        const double loss = ev.loss;
        const auto begin_burst = [&cluster, active, loss](
                                     const auto& links, int id) {
          for (const auto& [from, to] : links) {
            active->burst[{from, to}].push_back(BurstEntry{id, loss});
            cluster.network().set_link_loss(from, to, loss);
          }
        };
        const auto end_burst = [&cluster, active, probe](const auto& links,
                                                         int id) {
          bool healed = false;
          for (const auto& [from, to] : links) {
            auto& open = active->burst[{from, to}];
            std::erase_if(open,
                          [id](const BurstEntry& e) { return e.id == id; });
            if (open.empty()) {
              cluster.network().restore_link_loss(from, to);
              healed = true;
            } else {
              // Another burst still covers this link: reapply the
              // latest-started one instead of the baseline.
              cluster.network().set_link_loss(from, to, open.back().loss);
            }
          }
          // Only a burst end that actually returned a link to baseline is
          // a healing moment; the end of a window nested inside a wider
          // one changes nothing and must not arm the probe.
          if (healed && probe) arm_recovery_probe(cluster, *probe);
        };
        if (ev.every_s <= 0) {
          const int id = active->next_window++;
          simulator.schedule_at(at, [begin_burst, pairs, id] {
            begin_burst(pairs, id);
          });
          simulator.schedule_at(sim::from_seconds(ev.at_s + ev.for_s),
                                [end_burst, pairs = std::move(pairs), id] {
                                  end_burst(pairs, id);
                                });
        } else {
          // Each occurrence opens its own window and schedules its own
          // end relative to the fire time.
          const sim::Duration window = sim::from_seconds(ev.for_s);
          fire_at([&simulator, active, begin_burst, end_burst,
                   pairs = std::move(pairs), window] {
            const int id = active->next_window++;
            begin_burst(pairs, id);
            simulator.schedule_after(window, [end_burst, pairs, id] {
              end_burst(pairs, id);
            });
          });
        }
        break;
      }
      case core::ChurnKind::kFluctuation: {
        const sim::Duration lo = sim::from_milliseconds(ev.lo_ms);
        const sim::Duration hi = sim::from_milliseconds(ev.hi_ms);
        const auto begin_fluct = [&cluster, active, lo, hi](int id) {
          active->fluct.push_back(FluctWindow{id, lo, hi});
          cluster.network().set_fluctuation(lo, hi);
        };
        const auto end_fluct = [&cluster, active](int id) {
          std::erase_if(active->fluct,
                        [id](const FluctWindow& w) { return w.id == id; });
          if (active->fluct.empty()) {
            cluster.network().set_fluctuation(0, 0);
          } else {
            const FluctWindow& w = active->fluct.back();
            cluster.network().set_fluctuation(w.lo, w.hi);
          }
        };
        if (ev.every_s <= 0) {
          const int id = active->next_window++;
          simulator.schedule_at(at, [begin_fluct, id] { begin_fluct(id); });
          simulator.schedule_at(sim::from_seconds(ev.at_s + ev.for_s),
                                [end_fluct, id] { end_fluct(id); });
        } else {
          const sim::Duration window = sim::from_seconds(ev.for_s);
          fire_at([&simulator, active, begin_fluct, end_fluct, window] {
            const int id = active->next_window++;
            begin_fluct(id);
            simulator.schedule_after(window,
                                     [end_fluct, id] { end_fluct(id); });
          });
        }
        break;
      }
      case core::ChurnKind::kCrash:
      case core::ChurnKind::kSilence: {
        if (ev.a >= cfg.n_replicas) {
          churn_fail(ev, "replica out of range (have " +
                             std::to_string(cfg.n_replicas) + " replicas)");
        }
        const types::NodeId victim = ev.a;
        const bool hard = ev.kind == core::ChurnKind::kCrash;
        fire_at([&cluster, victim, hard] {
          if (hard) {
            cluster.crash_replica(victim);
          } else {
            cluster.silence_replica(victim);
          }
        });
        break;
      }
      case core::ChurnKind::kCrashRestart: {
        if (ev.a >= cfg.n_replicas) {
          churn_fail(ev, "replica out of range (have " +
                             std::to_string(cfg.n_replicas) + " replicas)");
        }
        const types::NodeId victim = ev.a;
        const sim::Duration downtime = sim::from_seconds(ev.for_s);
        fire_at([&simulator, &cluster, victim, downtime, probe] {
          cluster.crash_replica(victim);
          simulator.schedule_after(downtime, [&cluster, victim, probe] {
            cluster.restart_replica(victim);
            // The rebuilt replica rejoins at its recovered height; the
            // probe measures how long it lags the rest of the cluster.
            if (probe) arm_recovery_probe(cluster, *probe);
          });
        });
        break;
      }
    }
  }

  if (follow_used) {
    // The view listener both tracks the cluster-wide max view and moves
    // every active follow-degradation onto the new view's leader.
    cluster.add_view_listener([&cluster, active](types::NodeId,
                                                 types::View view) {
      if (view <= active->max_view) return;
      active->max_view = view;
      const types::NodeId leader = cluster.election().leader(view);
      for (const auto& fs : active->follows) {
        if (!fs->active || fs->current == leader) continue;
        const std::uint32_t n = cluster.config().num_endpoints();
        for (types::NodeId to = 0; to < n; ++to) {
          if (to != fs->current) {
            cluster.network().degrade_link(fs->current, to, -fs->applied_ns);
          }
        }
        for (types::NodeId to = 0; to < n; ++to) {
          if (to != leader) {
            cluster.network().degrade_link(leader, to, fs->applied_ns);
          }
        }
        fs->current = leader;
      }
    });
  }
}

RunOutput execute_full(const RunSpec& spec) {
  // Declared before the cluster so the simulator's pending probe events
  // (which hold a reference) never outlive it.
  RecoveryProbe probe;
  Cluster cluster(spec.cfg);
  auto obs = std::make_shared<ObserverState>();
  obs->measuring = spec.measure_whole_run;

  core::Replica::Hooks hooks;
  hooks.on_commit_block = [obs](const types::BlockPtr& block,
                                types::View commit_view, sim::Time) {
    if (!obs->measuring) return;
    ++obs->committed_in_window;
    ++obs->proposer_counts[block->proposer()];
    if (commit_view > block->view()) {
      obs->block_intervals.add(
          static_cast<double>(commit_view - block->view()));
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(),
                                with_payload(spec.workload, spec.cfg));

  // The simulated span: whole-run mode never executes the warm-up window.
  const double horizon_s = spec.measure_whole_run
                               ? spec.opts.measure_s
                               : spec.opts.warmup_s + spec.opts.measure_s;
  std::unique_ptr<util::TimelineCounter> timeline;
  if (spec.timeline_bucket_s > 0) {
    timeline = std::make_unique<util::TimelineCounter>(spec.timeline_bucket_s,
                                                       horizon_s);
    driver.set_timeline(timeline.get());
  }
  driver.install();
  install_churn(cluster, effective_churn(spec.faults, spec.cfg), &probe);

  cluster.start();
  driver.start();

  Snapshot before{};  // zero baseline (whole-run mode)
  if (spec.measure_whole_run) {
    driver.begin_measurement();
  } else {
    cluster.simulator().run_for(sim::from_seconds(spec.opts.warmup_s));
    before = Snapshot::of(cluster);
    driver.begin_measurement();
    obs->measuring = true;
  }

  cluster.simulator().run_for(sim::from_seconds(spec.opts.measure_s));
  obs->measuring = false;
  driver.end_measurement();
  const Snapshot after = Snapshot::of(cluster);
  driver.stop();

  RunOutput out;
  out.events_executed = cluster.simulator().events_executed();
  out.result = finalize(cluster, driver, *obs, before, after);
  out.result.recovery_ms =
      probe.mean_ms(sim::to_seconds(cluster.simulator().now()));
  if (timeline) {
    const auto buckets =
        static_cast<std::size_t>(horizon_s / spec.timeline_bucket_s);
    out.bucket_start_s.reserve(buckets);
    out.tx_per_s.reserve(buckets);
    for (std::size_t i = 0; i < buckets && i < timeline->num_buckets(); ++i) {
      out.bucket_start_s.push_back(timeline->bucket_start(i));
      out.tx_per_s.push_back(timeline->rate(i));
    }
  }
  return out;
}

RunResult execute(const RunSpec& spec) {
  return execute_full(spec).result;
}

RunResult run_experiment(const core::Config& cfg,
                         const client::WorkloadConfig& wl,
                         const RunOptions& opts) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts = opts;
  return execute(spec);
}

std::vector<RunSpec> closed_loop_specs(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  std::vector<RunSpec> specs;
  specs.reserve(concurrencies.size());
  for (std::uint32_t c : concurrencies) {
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = base_wl;
    spec.workload.mode = client::LoadMode::kClosedLoop;
    spec.workload.concurrency = c;
    spec.opts = opts;
    spec.offered = static_cast<double>(c);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<RunSpec> open_loop_specs(const core::Config& cfg,
                                     const client::WorkloadConfig& base_wl,
                                     const std::vector<double>& rates_tps,
                                     const RunOptions& opts) {
  std::vector<RunSpec> specs;
  specs.reserve(rates_tps.size());
  for (double rate : rates_tps) {
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = base_wl;
    spec.workload.mode = client::LoadMode::kOpenLoop;
    spec.workload.arrival_rate_tps = rate;
    spec.opts = opts;
    spec.offered = rate;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<SweepPoint> to_sweep_points(const std::vector<RunSpec>& specs,
                                        std::vector<RunResult> results) {
  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    points.push_back(SweepPoint{specs[i].offered, std::move(results[i])});
  }
  return points;
}

std::vector<SweepPoint> sweep_closed_loop(
    const core::Config& cfg, const client::WorkloadConfig& base_wl,
    const std::vector<std::uint32_t>& concurrencies, const RunOptions& opts) {
  const auto specs = closed_loop_specs(cfg, base_wl, concurrencies, opts);
  std::vector<RunResult> results;
  results.reserve(specs.size());
  for (const RunSpec& spec : specs) results.push_back(execute(spec));
  return to_sweep_points(specs, std::move(results));
}

std::vector<SweepPoint> sweep_open_loop(const core::Config& cfg,
                                        const client::WorkloadConfig& base_wl,
                                        const std::vector<double>& rates_tps,
                                        const RunOptions& opts) {
  const auto specs = open_loop_specs(cfg, base_wl, rates_tps, opts);
  std::vector<RunResult> results;
  results.reserve(specs.size());
  for (const RunSpec& spec : specs) results.push_back(execute(spec));
  return to_sweep_points(specs, std::move(results));
}

RunSpec timeline_spec(const core::Config& cfg,
                      const client::WorkloadConfig& wl, double horizon_s,
                      double bucket_s, double fluct_start_s,
                      double fluct_end_s, sim::Duration fluct_lo,
                      sim::Duration fluct_hi, double crash_at_s,
                      types::NodeId crash_replica, FaultKind fault) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0;
  spec.opts.measure_s = horizon_s;
  spec.measure_whole_run = true;
  spec.timeline_bucket_s = bucket_s;

  // The legacy two-event plan expressed as churn events, carried in
  // cfg.churn so the schedule reaches provenance and shard merges.
  core::ChurnSchedule schedule;
  if (fluct_start_s >= 0) {
    if (fluct_end_s < fluct_start_s) {
      throw std::invalid_argument(
          "timeline_spec: half-specified fluctuation window (start " +
          std::to_string(fluct_start_s) + "s, end " +
          std::to_string(fluct_end_s) + "s) — give both ends");
    }
    if (fluct_end_s > fluct_start_s) {  // a zero-length window is a no-op
      core::ChurnEvent ev;
      ev.kind = core::ChurnKind::kFluctuation;
      ev.at_s = fluct_start_s;
      ev.for_s = fluct_end_s - fluct_start_s;
      ev.lo_ms = sim::to_milliseconds(fluct_lo);
      ev.hi_ms = sim::to_milliseconds(fluct_hi);
      schedule.push_back(ev);
    }
  }
  if (crash_at_s > 0) {
    core::ChurnEvent ev;
    ev.kind = fault == FaultKind::kCrash ? core::ChurnKind::kCrash
                                         : core::ChurnKind::kSilence;
    ev.at_s = crash_at_s;
    ev.target = core::ChurnTarget::kReplica;
    ev.a = crash_replica;
    schedule.push_back(ev);
  }
  // Append to (never clobber) a schedule the caller already put in
  // cfg.churn — scenario benches pre-load their own DSL.
  const std::string extra = core::format_churn(schedule);
  if (!extra.empty()) {
    spec.cfg.churn =
        spec.cfg.churn.empty() ? extra : spec.cfg.churn + ";" + extra;
  }
  return spec;
}

TimelineResult run_responsiveness_timeline(
    const core::Config& cfg, const client::WorkloadConfig& wl,
    double horizon_s, double bucket_s, double fluct_start_s,
    double fluct_end_s, sim::Duration fluct_lo, sim::Duration fluct_hi,
    double crash_at_s, types::NodeId crash_replica, FaultKind fault) {
  RunOutput out = execute_full(
      timeline_spec(cfg, wl, horizon_s, bucket_s, fluct_start_s, fluct_end_s,
                    fluct_lo, fluct_hi, crash_at_s, crash_replica, fault));
  TimelineResult result;
  result.summary = std::move(out.result);
  result.bucket_start_s = std::move(out.bucket_start_s);
  result.tx_per_s = std::move(out.tx_per_s);
  return result;
}

}  // namespace bamboo::harness
