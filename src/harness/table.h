#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bamboo::harness {

/// Fixed-width text table used by the bench binaries to print the rows and
/// series of the paper's tables and figures.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& out) const;

  /// Format a double with fixed precision.
  static std::string num(double value, int precision = 1);
  /// Format an integer with thousands separators (e.g. "19,992").
  static std::string count(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bamboo::harness
