#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/replica.h"
#include "crypto/signer.h"
#include "election/leader_election.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "storage/block_store.h"

namespace bamboo::harness {

/// Builds a complete simulated deployment from one Config: simulator,
/// key store, network, leader election, and N replicas running the
/// configured protocol (with the configured Byzantine strategies applied to
/// the byz_no highest-id replicas). This is the programmatic equivalent of
/// Bamboo's JSON-config-driven deployment.
class Cluster {
 public:
  explicit Cluster(core::Config config);
  ~Cluster();

  /// Starts every replica (view 1). Call after installing hooks.
  void start();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::SimNetwork& network() { return net_; }
  [[nodiscard]] const net::SimNetwork& network() const { return net_; }
  [[nodiscard]] const core::Config& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  [[nodiscard]] core::Replica& replica(types::NodeId id) {
    return *replicas_.at(id);
  }
  [[nodiscard]] const core::Replica& replica(types::NodeId id) const {
    return *replicas_.at(id);
  }
  [[nodiscard]] const election::LeaderElection& election() const {
    return *election_;
  }

  /// Replica 0 is always honest (Config::is_byzantine) — the designated
  /// metrics observer.
  [[nodiscard]] core::Replica& observer() { return *replicas_.front(); }

  /// Install commit hooks on one replica. Must be called before start().
  void set_hooks(types::NodeId id, core::Replica::Hooks hooks);

  /// Register a cluster-wide view-entry listener (any replica entering a
  /// view fires it, before that replica proposes). Must be called before
  /// start(); the churn engine's leader-follow target uses this.
  void add_view_listener(
      std::function<void(types::NodeId, types::View)> listener);

  /// Crash a replica (fail-stop) — used by the responsiveness experiment.
  void crash_replica(types::NodeId id) { replicas_.at(id)->crash(); }

  /// Crash-restart recovery: tear the replica down and rebuild it from its
  /// durable BlockStore (which the Cluster owns, so it survives the old
  /// instance), then start it — it rejoins at the recovered height and
  /// chain-syncs the rest. The departing instance's counters are folded
  /// into the retired accumulators so cluster-wide sums stay monotonic.
  void restart_replica(types::NodeId id);

  /// The durable store backing a replica (valid after start()).
  [[nodiscard]] const storage::BlockStore& store(types::NodeId id) const {
    return *stores_.at(id);
  }

  /// Counters carried over from replica instances torn down by
  /// restart_replica (summed into cluster-wide metrics alongside the live
  /// replicas' own counters).
  [[nodiscard]] const core::ReplicaStats& retired_stats() const {
    return retired_;
  }
  [[nodiscard]] const sync::SyncStats& retired_sync_stats() const {
    return retired_sync_;
  }
  [[nodiscard]] std::uint64_t retired_mem_admitted() const {
    return retired_mem_admitted_;
  }
  [[nodiscard]] std::uint64_t retired_mem_rejected() const {
    return retired_mem_rejected_;
  }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

  /// Turn a replica silent mid-run (the paper's Fig. 15 "silence attack
  /// (crash)" fault: it stops proposing but keeps collecting votes).
  void silence_replica(types::NodeId id) {
    replicas_.at(id)->set_strategy(core::ByzStrategy::kSilence);
  }

  /// Cross-replica consistency check (paper §III-A): every pair of honest
  /// replicas must agree on the committed block hash at every height both
  /// have committed.
  struct ConsistencyReport {
    bool consistent = true;
    types::Height min_committed_height = 0;
    types::Height max_committed_height = 0;
    std::string detail;
  };
  [[nodiscard]] ConsistencyReport check_consistency() const;

  /// Sum of pacemaker timeouts across honest replicas.
  [[nodiscard]] std::uint64_t total_timeouts() const;

 private:
  /// Build one replica instance: hooks copied from pending_hooks_ (kept,
  /// not moved, so restart_replica can rebuild with the same wiring),
  /// view listeners chained in front, store attached.
  [[nodiscard]] std::unique_ptr<core::Replica> build_replica(types::NodeId id);

  core::Config cfg_;
  sim::Simulator sim_;
  crypto::KeyStore keys_;
  net::SimNetwork net_;
  std::unique_ptr<election::LeaderElection> election_;
  std::vector<core::Replica::Hooks> pending_hooks_;
  std::vector<std::function<void(types::NodeId, types::View)>>
      view_listeners_;
  std::vector<std::unique_ptr<storage::BlockStore>> stores_;
  std::string store_dir_;       ///< directory holding file-backed stores
  bool owns_store_dir_ = false;  ///< auto-generated dir, removed in dtor
  std::vector<std::unique_ptr<core::Replica>> replicas_;
  core::ReplicaStats retired_;
  sync::SyncStats retired_sync_;
  std::uint64_t retired_mem_admitted_ = 0;
  std::uint64_t retired_mem_rejected_ = 0;
  std::uint64_t restarts_ = 0;
  bool started_ = false;
};

}  // namespace bamboo::harness
